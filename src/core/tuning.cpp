#include "core/tuning.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace ust::core {

std::vector<unsigned> default_threadlens() { return {8, 16, 24, 32, 40, 48, 56, 64}; }

std::vector<unsigned> default_block_sizes() { return {32, 64, 128, 256, 512, 768, 1024}; }

std::vector<ExecBackend> default_backends() {
  return {ExecBackend::kNative, ExecBackend::kSim};
}

std::vector<nnz_t> default_chunk_nnzs() { return {0, 8192, 65536}; }

std::vector<unsigned> default_num_devices() { return {1, 2}; }

std::vector<index_t> default_rank_blocks() { return {0, 16, 128}; }

const char* backend_name(ExecBackend backend) {
  return backend == ExecBackend::kNative ? "native" : "sim";
}

TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes) {
  return tune_backends([&](Partitioning part, ExecBackend) { return runner(part); },
                       std::move(threadlens), std::move(block_sizes),
                       {ExecBackend::kNative});
}

TuneResult tune_backends(const std::function<double(Partitioning, ExecBackend)>& runner,
                         std::vector<unsigned> threadlens,
                         std::vector<unsigned> block_sizes,
                         std::vector<ExecBackend> backends) {
  return tune_backends(
      [&](Partitioning part, ExecBackend backend, nnz_t) { return runner(part, backend); },
      std::move(threadlens), std::move(block_sizes), std::move(backends), {nnz_t{0}});
}

TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t)>& runner,
    std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes,
    std::vector<ExecBackend> backends, std::vector<nnz_t> chunk_nnzs) {
  return tune_backends(
      [&](Partitioning part, ExecBackend backend, nnz_t chunk, unsigned) {
        return runner(part, backend, chunk);
      },
      std::move(threadlens), std::move(block_sizes), std::move(backends),
      std::move(chunk_nnzs), {1u});
}

TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t, unsigned)>& runner,
    std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes,
    std::vector<ExecBackend> backends, std::vector<nnz_t> chunk_nnzs,
    std::vector<unsigned> num_devices) {
  return tune_backends(
      [&](Partitioning part, ExecBackend backend, nnz_t chunk, unsigned devices,
          index_t) { return runner(part, backend, chunk, devices); },
      std::move(threadlens), std::move(block_sizes), std::move(backends),
      std::move(chunk_nnzs), std::move(num_devices), {index_t{0}});
}

TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t, unsigned, index_t)>& runner,
    std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes,
    std::vector<ExecBackend> backends, std::vector<nnz_t> chunk_nnzs,
    std::vector<unsigned> num_devices, std::vector<index_t> rank_blocks) {
  UST_EXPECTS(!threadlens.empty() && !block_sizes.empty() && !backends.empty() &&
              !chunk_nnzs.empty() && !num_devices.empty() && !rank_blocks.empty());
  // The chunk and device axes are native-only; a sim-only sweep lacking
  // their neutral values (chunk 0, one device) would skip every cell and die
  // on the empty-sweep invariant below -- reject it up front with a
  // diagnosable message instead.
  const bool has_native = std::any_of(backends.begin(), backends.end(),
                                      [](ExecBackend b) { return b == ExecBackend::kNative; });
  if (!has_native &&
      std::find(chunk_nnzs.begin(), chunk_nnzs.end(), nnz_t{0}) == chunk_nnzs.end()) {
    throw InvalidOptions(
        "sim-only tuning sweep needs chunk_nnz 0 in the chunk axis "
        "(chunk_nnz is a native-backend knob)");
  }
  if (!has_native &&
      std::find(num_devices.begin(), num_devices.end(), 1u) == num_devices.end()) {
    throw InvalidOptions(
        "sim-only tuning sweep needs num_devices 1 in the device axis "
        "(sharding is a native-backend knob)");
  }
  if (!has_native &&
      std::find(rank_blocks.begin(), rank_blocks.end(), index_t{0}) == rank_blocks.end()) {
    throw InvalidOptions(
        "sim-only tuning sweep needs rank_block 0 in the rank-block axis "
        "(rank blocking is a native-backend knob)");
  }
  TuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  std::vector<nnz_t> aligned_chunks;
  for (unsigned bs : block_sizes) {
    for (unsigned tl : threadlens) {
      const Partitioning part{.threadlen = tl, .block_size = bs};
      for (ExecBackend backend : backends) {
        // chunk_nnz must be a threadlen multiple (core::validate); treat the
        // axis values as approximate and align up per cell. Aligning can
        // alias two axis values (e.g. 8192 and 8200 both round to 8208 for
        // threadlen 48); dedupe so no aligned cell is timed twice -- a
        // duplicate sample would give the aliased configuration two draws
        // from the timing noise and skew "best" selection toward it.
        aligned_chunks.clear();
        for (nnz_t chunk : chunk_nnzs) {
          // The chunk cap is a native-grid knob; the sim backend ignores it,
          // so measuring it there would only duplicate samples.
          if (backend == ExecBackend::kSim && chunk != 0) continue;
          const nnz_t aligned = chunk == 0 ? 0 : round_up<nnz_t>(chunk, tl);
          if (std::find(aligned_chunks.begin(), aligned_chunks.end(), aligned) ==
              aligned_chunks.end()) {
            aligned_chunks.push_back(aligned);
          }
        }
        for (nnz_t aligned : aligned_chunks) {
          for (unsigned devices : num_devices) {
            // Sharding is native-only (validate rejects it on sim).
            if (backend == ExecBackend::kSim && devices != 1) continue;
            for (index_t rblock : rank_blocks) {
              // Rank blocking is native-only; on sim it is ignored, so
              // non-zero values would just duplicate samples.
              if (backend == ExecBackend::kSim && rblock != 0) continue;
              double s = std::numeric_limits<double>::quiet_NaN();
              try {
                s = runner(part, backend, aligned, devices, rblock);
              } catch (const std::exception& e) {
                UST_LOG_DEBUG << "tune: skipping (" << bs << "," << tl << ","
                              << backend_name(backend) << "," << aligned << ","
                              << devices << "," << rblock << "): " << e.what();
                continue;
              }
              result.samples.push_back({part, backend, aligned, devices, rblock, s});
              if (s < result.best_seconds) {
                result.best_seconds = s;
                result.best = part;
                result.best_backend = backend;
                result.best_chunk_nnz = aligned;
                result.best_num_devices = devices;
                result.best_rank_block = rblock;
              }
            }
          }
        }
      }
    }
  }
  UST_ENSURES(!result.samples.empty());
  return result;
}

}  // namespace ust::core
