#include "core/tuning.hpp"

#include <limits>

#include "util/logging.hpp"

namespace ust::core {

std::vector<unsigned> default_threadlens() { return {8, 16, 24, 32, 40, 48, 56, 64}; }

std::vector<unsigned> default_block_sizes() { return {32, 64, 128, 256, 512, 768, 1024}; }

TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes) {
  UST_EXPECTS(!threadlens.empty() && !block_sizes.empty());
  TuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (unsigned bs : block_sizes) {
    for (unsigned tl : threadlens) {
      const Partitioning part{.threadlen = tl, .block_size = bs};
      double s = std::numeric_limits<double>::quiet_NaN();
      try {
        s = runner(part);
      } catch (const std::exception& e) {
        UST_LOG_DEBUG << "tune: skipping (" << bs << "," << tl << "): " << e.what();
        continue;
      }
      result.samples.push_back({part, s});
      if (s < result.best_seconds) {
        result.best_seconds = s;
        result.best = part;
      }
    }
  }
  UST_ENSURES(!result.samples.empty());
  return result;
}

}  // namespace ust::core
