#include "core/tuning.hpp"

#include <limits>

#include "util/logging.hpp"

namespace ust::core {

std::vector<unsigned> default_threadlens() { return {8, 16, 24, 32, 40, 48, 56, 64}; }

std::vector<unsigned> default_block_sizes() { return {32, 64, 128, 256, 512, 768, 1024}; }

std::vector<ExecBackend> default_backends() {
  return {ExecBackend::kNative, ExecBackend::kSim};
}

const char* backend_name(ExecBackend backend) {
  return backend == ExecBackend::kNative ? "native" : "sim";
}

TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes) {
  return tune_backends([&](Partitioning part, ExecBackend) { return runner(part); },
                       std::move(threadlens), std::move(block_sizes),
                       {ExecBackend::kNative});
}

TuneResult tune_backends(const std::function<double(Partitioning, ExecBackend)>& runner,
                         std::vector<unsigned> threadlens,
                         std::vector<unsigned> block_sizes,
                         std::vector<ExecBackend> backends) {
  UST_EXPECTS(!threadlens.empty() && !block_sizes.empty() && !backends.empty());
  TuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (unsigned bs : block_sizes) {
    for (unsigned tl : threadlens) {
      const Partitioning part{.threadlen = tl, .block_size = bs};
      for (ExecBackend backend : backends) {
        double s = std::numeric_limits<double>::quiet_NaN();
        try {
          s = runner(part, backend);
        } catch (const std::exception& e) {
          UST_LOG_DEBUG << "tune: skipping (" << bs << "," << tl << ","
                        << backend_name(backend) << "): " << e.what();
          continue;
        }
        result.samples.push_back({part, backend, s});
        if (s < result.best_seconds) {
          result.best_seconds = s;
          result.best = part;
          result.best_backend = backend;
        }
      }
    }
  }
  UST_ENSURES(!result.samples.empty());
  return result;
}

}  // namespace ust::core
