#include "core/tuning.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace ust::core {

std::vector<unsigned> default_threadlens() { return {8, 16, 24, 32, 40, 48, 56, 64}; }

std::vector<unsigned> default_block_sizes() { return {32, 64, 128, 256, 512, 768, 1024}; }

std::vector<ExecBackend> default_backends() {
  return {ExecBackend::kNative, ExecBackend::kSim};
}

std::vector<nnz_t> default_chunk_nnzs() { return {0, 8192, 65536}; }

const char* backend_name(ExecBackend backend) {
  return backend == ExecBackend::kNative ? "native" : "sim";
}

TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes) {
  return tune_backends([&](Partitioning part, ExecBackend) { return runner(part); },
                       std::move(threadlens), std::move(block_sizes),
                       {ExecBackend::kNative});
}

TuneResult tune_backends(const std::function<double(Partitioning, ExecBackend)>& runner,
                         std::vector<unsigned> threadlens,
                         std::vector<unsigned> block_sizes,
                         std::vector<ExecBackend> backends) {
  return tune_backends(
      [&](Partitioning part, ExecBackend backend, nnz_t) { return runner(part, backend); },
      std::move(threadlens), std::move(block_sizes), std::move(backends), {nnz_t{0}});
}

TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t)>& runner,
    std::vector<unsigned> threadlens, std::vector<unsigned> block_sizes,
    std::vector<ExecBackend> backends, std::vector<nnz_t> chunk_nnzs) {
  UST_EXPECTS(!threadlens.empty() && !block_sizes.empty() && !backends.empty() &&
              !chunk_nnzs.empty());
  // The chunk axis is native-only; a sim-only sweep whose chunk axis lacks 0
  // would skip every cell and die on the empty-sweep invariant below --
  // reject it up front with a diagnosable message instead.
  if (std::none_of(backends.begin(), backends.end(),
                   [](ExecBackend b) { return b == ExecBackend::kNative; }) &&
      std::find(chunk_nnzs.begin(), chunk_nnzs.end(), nnz_t{0}) == chunk_nnzs.end()) {
    throw InvalidOptions(
        "sim-only tuning sweep needs chunk_nnz 0 in the chunk axis "
        "(chunk_nnz is a native-backend knob)");
  }
  TuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (unsigned bs : block_sizes) {
    for (unsigned tl : threadlens) {
      const Partitioning part{.threadlen = tl, .block_size = bs};
      for (ExecBackend backend : backends) {
        for (nnz_t chunk : chunk_nnzs) {
          // The chunk cap is a native-grid knob; the sim backend ignores it,
          // so measuring it there would only duplicate samples.
          if (backend == ExecBackend::kSim && chunk != 0) continue;
          // chunk_nnz must be a threadlen multiple (core::validate); treat
          // the axis values as approximate and align up per cell.
          const nnz_t aligned = chunk == 0 ? 0 : round_up<nnz_t>(chunk, tl);
          double s = std::numeric_limits<double>::quiet_NaN();
          try {
            s = runner(part, backend, aligned);
          } catch (const std::exception& e) {
            UST_LOG_DEBUG << "tune: skipping (" << bs << "," << tl << ","
                          << backend_name(backend) << "," << aligned
                          << "): " << e.what();
            continue;
          }
          result.samples.push_back({part, backend, aligned, s});
          if (s < result.best_seconds) {
            result.best_seconds = s;
            result.best = part;
            result.best_backend = backend;
            result.best_chunk_nnz = aligned;
          }
        }
      }
    }
  }
  UST_ENSURES(!result.samples.empty());
  return result;
}

}  // namespace ust::core
