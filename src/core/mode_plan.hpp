// Mode classification for sparse tensor operations (the paper's Table I).
// Every operation is described by which modes are *product* modes (the tensor
// is multiplied by a matrix along them; their indices guide the Hadamard /
// Kronecker products and must be stored) and which are *index* modes (they
// identify the output segment; F-COO compresses them into bit flags).
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace ust::core {

enum class TensorOp { kSpTTM, kSpMTTKRP, kSpTTMc };

struct ModePlan {
  TensorOp op;
  int target_mode = 0;             // the mode the operation is "on"
  std::vector<int> index_modes;    // ascending
  std::vector<int> product_modes;  // ascending

  std::string describe() const;
};

/// SpTTM on `mode`: product mode = {mode}, index modes = the rest (Table I
/// row 1: SpTTM on mode-3 has product mode-3, index modes (1,2)).
ModePlan make_mode_plan_spttm(int order, int mode);

/// SpMTTKRP on `mode`: index mode = {mode}, product modes = the rest
/// (Table I row 2: SpMTTKRP on mode-1 has product modes (2,3), index mode 1).
ModePlan make_mode_plan_spmttkrp(int order, int mode);

/// SpTTMc on `mode`: same mode split as SpMTTKRP (Table I row 3) but the
/// per-non-zero combination is a Kronecker product instead of Hadamard.
ModePlan make_mode_plan_spttmc(int order, int mode);

}  // namespace ust::core
