// Native CPU execution backend for the unified kernel (ExecBackend::kNative).
//
// The simulator (`sim/executor.hpp`) reproduces the paper's GPU *dataflow* --
// blocks, warps, shared-memory arenas, segmented scans -- which is what makes
// kernel-level claims testable, but it pays full emulation overhead on every
// production run: a std::function dispatch per block, bump-allocated shared
// arenas, column-strided lane arrays, and a per-non-zero-per-column
// expr(x, col) indirection. This backend executes the SAME UnifiedPlan
// metadata (FcooView: bf head flags, thread_first_seg, seg_row) as one tight
// loop per thread-pool worker over contiguous non-zero ranges:
//
//   * each worker owns a chunk of non-zeros aligned to threadlen partition
//     boundaries (so `thread_first_seg` gives its starting segment id),
//   * the per-non-zero product is a SIMD mul-then-add over *contiguous*
//     per-chunk accumulator tiles (core/simd.hpp; the rank dimension is the
//     vector axis) -- factor-row base pointers are hoisted once per non-zero
//     by the op-specific Expr (see `accumulate`),
//   * segments fully contained in a chunk are committed with plain stores
//     (seg_row is injective: one segment per output row, as the sim kernel's
//     conflict-free interior writes already assume),
//   * segments crossing a chunk boundary are resolved by a single carry
//     handoff per boundary -- the kAdjacentSync dataflow, realised here as a
//     cheap serial pass over the O(chunks * cols) boundary partials after the
//     parallel phase. Zero atomics, and (unlike the GPU carry chain) no
//     spinning: the handoff runs after the pool joins.
//
// Rank blocking + request batching (DESIGN.md §13) generalise the walk: the
// columns a chunk accumulates are described by ColBlocks -- contiguous column
// sub-ranges of one or more *batched* requests -- grouped into passes whose
// total width is bounded by the rank block, so wide outputs (SpTTMc's r0*r1
// columns) tile through L1 instead of thrashing the accumulator, and N
// same-plan requests share one walk of the nnz stream (per-request tiles
// side by side in the same pass). Both are bitwise neutral: columns are
// independent, every column sees exactly the storage-order per-non-zero
// mul-then-add sequence and the same boundary-carry handoff it would see in
// a solo scalar run, no matter how columns are grouped into passes.
//
// The result is bitwise deterministic run-to-run regardless of worker
// scheduling: chunk boundaries are fixed by (nnz, threadlen, pool size), each
// segment's partials are summed in storage order, and boundary partials are
// combined left-to-right. The simulator remains the fidelity/ablation oracle
// (ReduceStrategy only changes the dataflow there); this backend is the
// default for end-to-end runs. See DESIGN.md §8 and §13.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "core/simd.hpp"
#include "core/unified_kernel.hpp"
#include "obs/trace.hpp"
#include "sim/device.hpp"
#include "util/thread_pool.hpp"

namespace ust::core::native {

/// A contiguous range of non-zeros processed by one worker task. `lo` is
/// always a multiple of the plan's threadlen (so thread_first_seg[lo /
/// threadlen] is the segment id of the first non-zero); `hi` is either a
/// multiple of threadlen or nnz.
struct Chunk {
  nnz_t lo = 0;
  nnz_t hi = 0;
};

/// Splits [0, nnz) into up to ~4 chunks per worker (dynamic scheduling evens
/// out skew), each aligned to `threadlen` partition boundaries. A non-zero
/// `max_chunk_nnz` (a multiple of threadlen, see core::validate) additionally
/// caps every chunk's size, raising the chunk count as needed -- the grid is
/// deterministic in (nnz, threadlen, workers, max_chunk_nnz), which is what
/// the streaming pipeline's bitwise-identity guarantee rests on. Returns an
/// empty vector for an empty tensor.
std::vector<Chunk> make_chunks(nnz_t nnz, unsigned threadlen, unsigned workers,
                               nnz_t max_chunk_nnz = 0);

/// One contiguous column sub-range of one batched request's output, placed in
/// the request-concatenated accumulator tile at `acc_off`. Column `c0 + c` of
/// request `req` accumulates at tile offset `acc_off + c`.
struct ColBlock {
  std::uint32_t req = 0;  // index into the batch's outs/exprs arrays
  index_t c0 = 0;         // first output column this block covers
  index_t nc = 0;         // block width (>= 1)
  std::size_t acc_off = 0;  // offset into the concatenated accumulator tile
};

/// Default pass width (columns) when UnifiedOptions::rank_block is 0: 512
/// floats = 2 KiB of accumulator per pass, leaving most of a 32 KiB L1 for
/// the factor rows the expression gathers.
constexpr index_t kAutoRankBlock = 512;

/// Splits the batched requests' output widths into ColBlocks of at most
/// `rank_block` columns (0 = kAutoRankBlock) and groups them into passes
/// whose total width never exceeds the block size (a single block is a pass
/// of its own). Pass p covers blocks [pass_off[p], pass_off[p+1]); each pass
/// is one walk over a chunk's non-zeros. Zero-width requests get no blocks
/// (their zero-initialised outputs are already the correct result).
std::vector<ColBlock> make_col_blocks(std::span<const index_t> widths, index_t rank_block,
                                      std::vector<std::size_t>& pass_off);

/// Per-chunk boundary state produced by the parallel phase and consumed by
/// the serial carry pass. The segment structure is a property of the tensor
/// alone, so one ChunkState serves every request and every rank-block pass of
/// a batch (each pass recomputes identical values).
struct ChunkState {
  index_t first_seg = 0;          // segment id of the chunk's first non-zero
  index_t tail_seg = 0;           // segment id open at chunk end
  std::uint8_t has_head_partial = 0;  // leading run continued a predecessor
  std::uint8_t tail_closes = 0;       // chunk end coincides with a segment end
  std::uint8_t tail_committed = 0;    // trailing run already written in phase 1
};

/// Phase 1 worker body: walks one chunk once per rank-block pass, committing
/// interior segments directly and leaving boundary partials in `acc`
/// (trailing run) and `head_partial` (leading run continuing the previous
/// chunk). `acc` and `head_partial` are this chunk's contiguous tiles of
/// `total_cols` floats (the concatenated width of all batched requests);
/// block b of the batch lives at tile offset b.acc_off. The multi-pass walk
/// re-reads flags and values identically per pass, so every column -- and the
/// ChunkState -- is exactly what a solo single-pass run would produce.
template <class Expr>
inline void run_chunk(const FcooView& f, std::span<const OutView> outs,
                      std::span<const Expr> exprs, std::span<const ColBlock> blocks,
                      std::span<const std::size_t> pass_off, std::size_t total_cols,
                      Chunk ch, float* UST_RESTRICT acc, float* UST_RESTRICT head_partial,
                      ChunkState& st) {
  st = ChunkState{};
  st.first_seg = f.thread_first_seg[ch.lo / f.threadlen];
  const bool starts_fresh = f.head(ch.lo);
  std::fill(acc, acc + total_cols, 0.0f);

  // Fused multi-request dispatch (DESIGN.md §13): when the expression offers
  // a pass fuser and the pass qualifies (equal-width blocks of a shared-plan
  // batch), one SIMD dispatch per non-zero covers all fused tiles -- the
  // generic per-block loop would pay one indirect call per request, capping
  // what request fusion can win to the shared stream decode.
  constexpr bool kFusable = requires(std::span<const Expr> es, std::span<const ColBlock> ps,
                                     float* a) { Expr::make_pass_fuser(es, ps, a); };

  for (std::size_t p = 0; p + 1 < pass_off.size(); ++p) {
    const std::span<const ColBlock> pass = blocks.subspan(pass_off[p], pass_off[p + 1] - pass_off[p]);
    const auto fuser = [&] {
      if constexpr (kFusable) return Expr::make_pass_fuser(exprs, pass, acc);
      else return false;  // placeholder; never read
    }();
    index_t seg = st.first_seg;
    bool closed_any = false;
    // The bit-flag word is cached across up to 64 non-zeros, as in the sim
    // kernel ("read bf in registers").
    std::uint64_t bf_word = f.bf_words[ch.lo >> 6];
    for (nnz_t x = ch.lo; x < ch.hi; ++x) {
      if ((x & 63) == 0) bf_word = f.bf_words[x >> 6];
      if (x > ch.lo && ((bf_word >> (x & 63)) & 1ull)) {
        // The run [.., x-1] of segment `seg` closes here.
        if (!starts_fresh && !closed_any) {
          // Leading run of a segment opened in an earlier chunk: defer.
          for (const ColBlock& b : pass) {
            std::copy(acc + b.acc_off, acc + b.acc_off + b.nc, head_partial + b.acc_off);
          }
          st.has_head_partial = 1;
        } else {
          // Interior segment, exclusively owned: plain stores.
          for (const ColBlock& b : pass) {
            const OutView& o = outs[b.req];
            value_t* UST_RESTRICT dst =
                o.data + static_cast<std::size_t>(f.seg_row[seg]) * o.ld + b.c0;
            const float* UST_RESTRICT a = acc + b.acc_off;
            for (index_t c = 0; c < b.nc; ++c) dst[c] += a[c];
          }
        }
        for (const ColBlock& b : pass) {
          std::fill(acc + b.acc_off, acc + b.acc_off + b.nc, 0.0f);
        }
        closed_any = true;
        ++seg;
      }
      const float v = f.vals[x];
      if constexpr (kFusable) {
        if (fuser) {
          (*fuser)(x, v);
          continue;
        }
      }
      for (const ColBlock& b : pass) {
        exprs[b.req].accumulate(x, v, acc + b.acc_off, b.c0, b.nc);
      }
    }

    st.tail_seg = seg;
    st.tail_closes = (ch.hi >= f.nnz) || f.head(ch.hi);
    if (st.tail_closes && (starts_fresh || closed_any)) {
      // Trailing segment both opened and closed within this chunk: commit now.
      for (const ColBlock& b : pass) {
        const OutView& o = outs[b.req];
        value_t* UST_RESTRICT dst =
            o.data + static_cast<std::size_t>(f.seg_row[seg]) * o.ld + b.c0;
        const float* UST_RESTRICT a = acc + b.acc_off;
        for (index_t c = 0; c < b.nc; ++c) dst[c] += a[c];
      }
      st.tail_committed = 1;
    }
    // Otherwise this pass's slices of `acc` (the chunk's tails tile) carry
    // the open partial into the serial boundary pass.
  }
}

/// Single-request convenience overload: one full-width block, one pass --
/// byte-for-byte the pre-blocking walk.
template <class Expr>
inline void run_chunk(const FcooView& f, const OutView& out, const Expr& expr,
                      Chunk ch, float* UST_RESTRICT acc,
                      float* UST_RESTRICT head_partial, ChunkState& st) {
  const ColBlock block{0, 0, static_cast<index_t>(out.num_cols), 0};
  const std::size_t pass_off[2] = {0, 1};
  run_chunk<Expr>(f, std::span<const OutView>(&out, 1), std::span<const Expr>(&expr, 1),
                  std::span<const ColBlock>(&block, 1),
                  std::span<const std::size_t>(pass_off, 2), out.num_cols, ch, acc,
                  head_partial, st);
}

/// Phase 2: the serial left-to-right carry fold over per-chunk boundary
/// state. `seg_row` maps the segment ids stored in `states` to output rows
/// (the plan's global table for single-shot, a chunk-local slice for the
/// streaming executor). `carry` must hold `total_cols` floats and persists
/// across calls -- the streaming pipeline folds chunk after chunk with one
/// running carry, which is exactly what keeps streamed results bitwise
/// identical to single-shot execution. Shared by every caller (single-shot,
/// streaming, sharded, batched) so the handoff rule can never diverge. The
/// chunk flags apply to every block at once -- the segment structure doesn't
/// depend on the request -- so folding the concatenated tile is the same as
/// folding each request independently.
inline void fold_boundaries(const index_t* seg_row, std::span<const ChunkState> states,
                            const float* UST_RESTRICT tails,
                            const float* UST_RESTRICT head_partials, std::size_t total_cols,
                            std::span<const OutView> outs, std::span<const ColBlock> blocks,
                            float* UST_RESTRICT carry) {
  for (std::size_t k = 0; k < states.size(); ++k) {
    const ChunkState& st = states[k];
    if (st.has_head_partial) {
      // Segment st.first_seg opened earlier and closed inside chunk k.
      const float* hp = &head_partials[k * total_cols];
      for (const ColBlock& b : blocks) {
        const OutView& o = outs[b.req];
        value_t* UST_RESTRICT dst =
            o.data + static_cast<std::size_t>(seg_row[st.first_seg]) * o.ld + b.c0;
        for (index_t c = 0; c < b.nc; ++c) dst[c] += carry[b.acc_off + c] + hp[b.acc_off + c];
      }
      std::fill(carry, carry + total_cols, 0.0f);
    }
    if (st.tail_committed == 0) {
      const float* UST_RESTRICT tp = &tails[k * total_cols];
      if (st.tail_closes) {
        for (const ColBlock& b : blocks) {
          const OutView& o = outs[b.req];
          value_t* UST_RESTRICT dst =
              o.data + static_cast<std::size_t>(seg_row[st.tail_seg]) * o.ld + b.c0;
          for (index_t c = 0; c < b.nc; ++c) dst[c] += carry[b.acc_off + c] + tp[b.acc_off + c];
        }
        std::fill(carry, carry + total_cols, 0.0f);
      } else {
        for (std::size_t c = 0; c < total_cols; ++c) carry[c] += tp[c];
      }
    }
  }
}

/// Single-output compatibility overload.
inline void fold_boundaries(const index_t* seg_row, std::span<const ChunkState> states,
                            const float* UST_RESTRICT tails,
                            const float* UST_RESTRICT head_partials, std::size_t cols,
                            const OutView& out, float* UST_RESTRICT carry) {
  const ColBlock block{0, 0, static_cast<index_t>(cols), 0};
  fold_boundaries(seg_row, states, tails, head_partials, cols,
                  std::span<const OutView>(&out, 1), std::span<const ColBlock>(&block, 1),
                  carry);
}

/// Executes a batch of N same-plan requests natively over `device`'s worker
/// pool in one pass over the nnz stream per rank block: `outs[i]` /
/// `exprs[i]` are request i's output and expression (all over the same
/// FcooView). Every output must be zero-initialised, exactly as for the sim
/// path. Each request's result is bitwise identical to running it alone --
/// per-request tiles are disjoint and the boundary fold treats them
/// independently -- which is the invariant Engine::run_batched and the
/// coalescing submit queue rely on.
template <class Expr>
void execute_batched(sim::Device& device, const FcooView& f, std::span<const OutView> outs,
                     std::span<const Expr> exprs, nnz_t max_chunk_nnz = 0,
                     index_t rank_block = 0) {
  UST_EXPECTS(outs.size() == exprs.size());
  if (f.nnz == 0 || outs.empty()) return;
  std::vector<index_t> widths;
  widths.reserve(outs.size());
  std::size_t total_cols = 0;
  for (const OutView& o : outs) {
    widths.push_back(static_cast<index_t>(o.num_cols));
    total_cols += o.num_cols;
  }
  if (total_cols == 0) return;
  ThreadPool& pool = device.pool();
  const std::vector<Chunk> chunks =
      make_chunks(f.nnz, f.threadlen, pool.size() + 1, max_chunk_nnz);
  if (chunks.empty()) return;
  std::vector<std::size_t> pass_off;
  const std::vector<ColBlock> blocks = make_col_blocks(widths, rank_block, pass_off);
  // A native run still counts as one launch in the device counters so
  // end-to-end accounting (launches per ALS iteration etc.) stays meaningful
  // across backends; blocks_executed counts worker chunks.
  device.note_kernel_launch(chunks.size());

  // Kernel profiling hooks (DESIGN.md §14): one span per pass plus one per
  // worker chunk -- never per non-zero. Pool workers have no thread-local
  // trace context, so the caller's id is captured here and pinned per span.
  obs::Span obs_pass("native.execute");
  obs_pass.arg("nnz", static_cast<std::uint64_t>(f.nnz))
      .arg("simd", static_cast<std::uint64_t>(simd::active_level()));
  const std::uint64_t obs_id = obs::current_trace_id();

  // Contiguous per-chunk accumulator tiles: tails doubles as the running
  // accumulator during phase 1 and holds the trailing open partials after.
  std::vector<float> tails(chunks.size() * total_cols);
  std::vector<float> head_partials(chunks.size() * total_cols);
  std::vector<ChunkState> states(chunks.size());

  // ---- Phase 1 (parallel): one tight loop per chunk per pass -------------
  pool.parallel_ranges(chunks.size(), /*grain=*/1,
                       [&](unsigned /*worker*/, std::size_t begin, std::size_t end) {
                         for (std::size_t k = begin; k < end; ++k) {
                           obs::Span obs_chunk("native.chunk", obs_id);
                           obs_chunk
                               .arg("nnz", static_cast<std::uint64_t>(chunks[k].hi -
                                                                      chunks[k].lo))
                               .arg("chunk", k);
                           run_chunk<Expr>(f, outs, exprs, blocks, pass_off, total_cols,
                                           chunks[k], &tails[k * total_cols],
                                           &head_partials[k * total_cols], states[k]);
                         }
                       });

  // ---- Phase 2 (serial): carry handoff across chunk boundaries -----------
  // Walks chunks left to right with one running carry tile; each boundary
  // segment receives exactly one closing write (the kAdjacentSync ownership
  // rule), so no atomics are needed here either.
  std::vector<float> carry(total_cols, 0.0f);
  obs::Span obs_fold("native.fold", obs_id);
  obs_fold.arg("chunks", chunks.size());
  fold_boundaries(f.seg_row, states, tails.data(), head_partials.data(), total_cols, outs,
                  blocks, carry.data());
  // The last chunk always closes at nnz, so the carry has been flushed.
}

/// Executes one unified operation natively: a batch of one.
/// `expr.accumulate(x, v, acc, c0, nc)` must add v * expr(x, c0 + c) into
/// acc[c] for the block's columns (the contiguous-tile form of the sim
/// kernel's expr(x, col)).
template <class Expr>
void execute(sim::Device& device, const FcooView& f, const OutView& out,
             const Expr& expr, nnz_t max_chunk_nnz = 0, index_t rank_block = 0) {
  execute_batched<Expr>(device, f, std::span<const OutView>(&out, 1),
                        std::span<const Expr>(&expr, 1), max_chunk_nnz, rank_block);
}

}  // namespace ust::core::native
