// Native CPU execution backend for the unified kernel (ExecBackend::kNative).
//
// The simulator (`sim/executor.hpp`) reproduces the paper's GPU *dataflow* --
// blocks, warps, shared-memory arenas, segmented scans -- which is what makes
// kernel-level claims testable, but it pays full emulation overhead on every
// production run: a std::function dispatch per block, bump-allocated shared
// arenas, column-strided lane arrays, and a per-non-zero-per-column
// expr(x, col) indirection. This backend executes the SAME UnifiedPlan
// metadata (FcooView: bf head flags, thread_first_seg, seg_row) as one tight
// loop per thread-pool worker over contiguous non-zero ranges:
//
//   * each worker owns a chunk of non-zeros aligned to threadlen partition
//     boundaries (so `thread_first_seg` gives its starting segment id),
//   * the per-non-zero product is a branch-free FMA over a *contiguous*
//     per-chunk accumulator tile -- factor-row base pointers are hoisted once
//     per non-zero by the op-specific Expr (see `accumulate` below),
//   * segments fully contained in a chunk are committed with plain stores
//     (seg_row is injective: one segment per output row, as the sim kernel's
//     conflict-free interior writes already assume),
//   * segments crossing a chunk boundary are resolved by a single carry
//     handoff per boundary -- the kAdjacentSync dataflow, realised here as a
//     cheap serial pass over the O(chunks * cols) boundary partials after the
//     parallel phase. Zero atomics, and (unlike the GPU carry chain) no
//     spinning: the handoff runs after the pool joins.
//
// The result is bitwise deterministic run-to-run regardless of worker
// scheduling: chunk boundaries are fixed by (nnz, threadlen, pool size), each
// segment's partials are summed in storage order, and boundary partials are
// combined left-to-right. The simulator remains the fidelity/ablation oracle
// (ReduceStrategy only changes the dataflow there); this backend is the
// default for end-to-end runs. See DESIGN.md §8.
#pragma once

#include <algorithm>
#include <vector>

#include "core/unified_kernel.hpp"
#include "sim/device.hpp"
#include "util/thread_pool.hpp"

namespace ust::core::native {

/// A contiguous range of non-zeros processed by one worker task. `lo` is
/// always a multiple of the plan's threadlen (so thread_first_seg[lo /
/// threadlen] is the segment id of the first non-zero); `hi` is either a
/// multiple of threadlen or nnz.
struct Chunk {
  nnz_t lo = 0;
  nnz_t hi = 0;
};

/// Splits [0, nnz) into up to ~4 chunks per worker (dynamic scheduling evens
/// out skew), each aligned to `threadlen` partition boundaries. A non-zero
/// `max_chunk_nnz` (a multiple of threadlen, see core::validate) additionally
/// caps every chunk's size, raising the chunk count as needed -- the grid is
/// deterministic in (nnz, threadlen, workers, max_chunk_nnz), which is what
/// the streaming pipeline's bitwise-identity guarantee rests on. Returns an
/// empty vector for an empty tensor.
std::vector<Chunk> make_chunks(nnz_t nnz, unsigned threadlen, unsigned workers,
                               nnz_t max_chunk_nnz = 0);

/// Per-chunk boundary state produced by the parallel phase and consumed by
/// the serial carry pass.
struct ChunkState {
  index_t first_seg = 0;          // segment id of the chunk's first non-zero
  index_t tail_seg = 0;           // segment id open at chunk end
  std::uint8_t has_head_partial = 0;  // leading run continued a predecessor
  std::uint8_t tail_closes = 0;       // chunk end coincides with a segment end
  std::uint8_t tail_committed = 0;    // trailing run already written in phase 1
};

/// Phase 1 worker body: walks one chunk, committing interior segments
/// directly and leaving boundary partials in `acc` (trailing run) and
/// `head_partial` (leading run continuing the previous chunk). `acc` and
/// `head_partial` are this chunk's contiguous `cols`-wide tiles.
template <class Expr>
inline void run_chunk(const FcooView& f, const OutView& out, const Expr& expr,
                      Chunk ch, float* UST_RESTRICT acc,
                      float* UST_RESTRICT head_partial, ChunkState& st) {
  const std::size_t cols = out.num_cols;
  index_t seg = f.thread_first_seg[ch.lo / f.threadlen];
  st.first_seg = seg;
  const bool starts_fresh = f.head(ch.lo);
  bool closed_any = false;
  std::fill(acc, acc + cols, 0.0f);

  // The bit-flag word is cached across up to 64 non-zeros, as in the sim
  // kernel ("read bf in registers").
  std::uint64_t bf_word = f.bf_words[ch.lo >> 6];
  for (nnz_t x = ch.lo; x < ch.hi; ++x) {
    if ((x & 63) == 0) bf_word = f.bf_words[x >> 6];
    if (x > ch.lo && ((bf_word >> (x & 63)) & 1ull)) {
      // The run [.., x-1] of segment `seg` closes here.
      if (!starts_fresh && !closed_any) {
        // Leading run of a segment opened in an earlier chunk: defer.
        std::copy(acc, acc + cols, head_partial);
        st.has_head_partial = 1;
      } else {
        // Interior segment, exclusively owned: plain stores.
        value_t* UST_RESTRICT dst =
            out.data + static_cast<std::size_t>(f.seg_row[seg]) * out.ld;
        for (std::size_t c = 0; c < cols; ++c) dst[c] += acc[c];
      }
      std::fill(acc, acc + cols, 0.0f);
      closed_any = true;
      ++seg;
    }
    expr.accumulate(x, f.vals[x], acc);
  }

  st.tail_seg = seg;
  st.tail_closes = (ch.hi >= f.nnz) || f.head(ch.hi);
  if (st.tail_closes && (starts_fresh || closed_any)) {
    // Trailing segment both opened and closed within this chunk: commit now.
    value_t* UST_RESTRICT dst =
        out.data + static_cast<std::size_t>(f.seg_row[seg]) * out.ld;
    for (std::size_t c = 0; c < cols; ++c) dst[c] += acc[c];
    st.tail_committed = 1;
  }
  // Otherwise `acc` (the chunk's tails tile) carries the open partial into
  // the serial boundary pass.
}

/// Phase 2: the serial left-to-right carry fold over per-chunk boundary
/// state. `seg_row` maps the segment ids stored in `states` to output rows
/// (the plan's global table for single-shot, a chunk-local slice for the
/// streaming executor). `carry` must hold `cols` floats and persists across
/// calls -- the streaming pipeline folds chunk after chunk with one running
/// carry, which is exactly what keeps streamed results bitwise identical to
/// single-shot execution. Shared by both callers so the handoff rule can
/// never diverge between them.
inline void fold_boundaries(const index_t* seg_row, std::span<const ChunkState> states,
                            const float* UST_RESTRICT tails,
                            const float* UST_RESTRICT head_partials, std::size_t cols,
                            const OutView& out, float* UST_RESTRICT carry) {
  for (std::size_t k = 0; k < states.size(); ++k) {
    const ChunkState& st = states[k];
    if (st.has_head_partial) {
      // Segment st.first_seg opened earlier and closed inside chunk k.
      value_t* UST_RESTRICT dst =
          out.data + static_cast<std::size_t>(seg_row[st.first_seg]) * out.ld;
      const float* UST_RESTRICT hp = &head_partials[k * cols];
      for (std::size_t c = 0; c < cols; ++c) dst[c] += carry[c] + hp[c];
      std::fill(carry, carry + cols, 0.0f);
    }
    if (st.tail_committed == 0) {
      const float* UST_RESTRICT tp = &tails[k * cols];
      if (st.tail_closes) {
        value_t* UST_RESTRICT dst =
            out.data + static_cast<std::size_t>(seg_row[st.tail_seg]) * out.ld;
        for (std::size_t c = 0; c < cols; ++c) dst[c] += carry[c] + tp[c];
        std::fill(carry, carry + cols, 0.0f);
      } else {
        for (std::size_t c = 0; c < cols; ++c) carry[c] += tp[c];
      }
    }
  }
}

/// Executes the unified operation natively over `device`'s worker pool.
/// `expr.accumulate(x, v, acc)` must add v * expr(x, c) into acc[c] for every
/// output column c (the contiguous-tile form of the sim kernel's
/// expr(x, col)). The output must be zero-initialised, exactly as for the
/// sim path.
template <class Expr>
void execute(sim::Device& device, const FcooView& f, const OutView& out,
             const Expr& expr, nnz_t max_chunk_nnz = 0) {
  if (f.nnz == 0) return;
  ThreadPool& pool = device.pool();
  const std::vector<Chunk> chunks =
      make_chunks(f.nnz, f.threadlen, pool.size() + 1, max_chunk_nnz);
  const std::size_t cols = out.num_cols;
  if (chunks.empty() || cols == 0) return;
  // A native run still counts as one launch in the device counters so
  // end-to-end accounting (launches per ALS iteration etc.) stays meaningful
  // across backends; blocks_executed counts worker chunks.
  device.note_kernel_launch(chunks.size());

  // Contiguous per-chunk accumulator tiles: tails doubles as the running
  // accumulator during phase 1 and holds the trailing open partial after.
  std::vector<float> tails(chunks.size() * cols);
  std::vector<float> head_partials(chunks.size() * cols);
  std::vector<ChunkState> states(chunks.size());

  // ---- Phase 1 (parallel): one tight loop per chunk ----------------------
  pool.parallel_ranges(chunks.size(), /*grain=*/1,
                       [&](unsigned /*worker*/, std::size_t begin, std::size_t end) {
                         for (std::size_t k = begin; k < end; ++k) {
                           run_chunk(f, out, expr, chunks[k], &tails[k * cols],
                                     &head_partials[k * cols], states[k]);
                         }
                       });

  // ---- Phase 2 (serial): carry handoff across chunk boundaries -----------
  // Walks chunks left to right with one running carry tile; each boundary
  // segment receives exactly one closing write (the kAdjacentSync ownership
  // rule), so no atomics are needed here either.
  std::vector<float> carry(cols, 0.0f);
  fold_boundaries(f.seg_row, states, tails.data(), head_partials.data(), cols, out,
                  carry.data());
  // The last chunk always closes at nnz, so the carry has been flushed.
}

}  // namespace ust::core::native
