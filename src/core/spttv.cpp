#include "core/spttv.hpp"

#include <memory>

#include "core/native_exec.hpp"
#include "tensor/fcoo.hpp"

namespace ust::core {

namespace {

constexpr std::size_t kMaxProductModes = 7;

/// TTV product expression: the scalar product of the contraction vectors'
/// entries at the non-zero's product-mode indices. Output has one column.
struct TtvExpr {
  const index_t* idx[kMaxProductModes];
  const value_t* vec[kMaxProductModes];
  std::size_t nprod;

  float operator()(nnz_t x, index_t /*col*/) const {
    float v = 1.0f;
    for (std::size_t p = 0; p < nprod; ++p) {
      v *= vec[p][idx[p][x]];
    }
    return v;
  }

  void accumulate(nnz_t x, float v, float* UST_RESTRICT acc) const {
    for (std::size_t p = 0; p < nprod; ++p) v *= vec[p][idx[p][x]];
    acc[0] += v;
  }
};

}  // namespace

UnifiedTtv::UnifiedTtv(sim::Device& device, const CooTensor& tensor, int mode,
                       Partitioning part)
    : mode_(mode) {
  // Same mode split as MTTKRP (all modes but `mode` are contracted), so the
  // same F-COO layout serves both operations -- the unification at work.
  const ModePlan mp = make_mode_plan_spmttkrp(tensor.order(), mode);
  UST_EXPECTS(mp.product_modes.size() <= kMaxProductModes);
  const FcooTensor fcoo = FcooTensor::build(tensor, mp.index_modes, mp.product_modes);
  plan_ = std::make_unique<UnifiedPlan>(device, fcoo, part);
}

std::vector<value_t> UnifiedTtv::run(std::span<const std::vector<value_t>> vectors,
                                     const UnifiedOptions& opt) const {
  const auto& prod_modes = plan_->product_modes();
  UST_EXPECTS(vectors.size() == plan_->dims().size());
  for (int m : prod_modes) {
    UST_EXPECTS(vectors[static_cast<std::size_t>(m)].size() ==
                plan_->dims()[static_cast<std::size_t>(m)]);
  }
  sim::Device& dev = plan_->device();

  vec_bufs_.resize(prod_modes.size());
  for (std::size_t p = 0; p < prod_modes.size(); ++p) {
    const auto& v = vectors[static_cast<std::size_t>(prod_modes[p])];
    if (vec_bufs_[p].size() != v.size()) vec_bufs_[p] = dev.alloc<value_t>(v.size());
    vec_bufs_[p].copy_from_host(v);
  }
  const index_t out_rows = plan_->dims()[static_cast<std::size_t>(mode_)];
  if (out_buf_.size() != out_rows) out_buf_ = dev.alloc<value_t>(out_rows);
  out_buf_.fill(value_t{0});

  FcooView view = plan_->view();
  OutView out_view{out_buf_.data(), 1, 1};
  TtvExpr expr{};
  expr.nprod = prod_modes.size();
  for (std::size_t p = 0; p < prod_modes.size(); ++p) {
    expr.idx[p] = plan_->product_indices(p).data();
    expr.vec[p] = vec_bufs_[p].data();
  }
  if (opt.backend == ExecBackend::kNative) {
    native::execute(dev, view, out_view, expr);
  } else {
    const UnifiedOptions ropt = plan_->resolve_options(1, opt);
    const sim::LaunchConfig cfg = plan_->launch_config(1, ropt);
    std::unique_ptr<sim::CarryChain> chain;
    if (ropt.strategy == ReduceStrategy::kAdjacentSync) {
      chain = std::make_unique<sim::CarryChain>(cfg.total_blocks(), ropt.column_tile);
    }
    sim::launch(dev, cfg, [&](sim::BlockCtx& blk) {
      unified_block_program(blk, view, out_view, ropt, expr, chain.get());
    });
  }

  std::vector<value_t> out(out_rows);
  out_buf_.copy_to_host(out);
  return out;
}

std::vector<value_t> spttv_unified(sim::Device& device, const CooTensor& tensor, int mode,
                                   std::span<const std::vector<value_t>> vectors,
                                   Partitioning part, const UnifiedOptions& opt) {
  UnifiedTtv op(device, tensor, mode, part);
  return op.run(vectors, opt);
}

}  // namespace ust::core
