#include "core/spttv.hpp"

#include <memory>

#include "core/native_exec.hpp"
#include "pipeline/plan_cache.hpp"
#include "pipeline/stream_executor.hpp"
#include "shard/shard_executor.hpp"
#include "tensor/fcoo.hpp"

namespace ust::core {

namespace {

constexpr std::size_t kMaxProductModes = 7;

/// TTV product expression: the scalar product of the contraction vectors'
/// entries at the non-zero's product-mode indices. Output has one column.
struct TtvExpr {
  const index_t* idx[kMaxProductModes];
  const value_t* vec[kMaxProductModes];
  std::size_t nprod;

  float operator()(nnz_t x, index_t /*col*/) const {
    float v = 1.0f;
    for (std::size_t p = 0; p < nprod; ++p) {
      v *= vec[p][idx[p][x]];
    }
    return v;
  }

  void accumulate(nnz_t x, float v, float* UST_RESTRICT acc) const {
    for (std::size_t p = 0; p < nprod; ++p) v *= vec[p][idx[p][x]];
    acc[0] += v;
  }
};

}  // namespace

UnifiedTtv::UnifiedTtv(sim::Device& device, const CooTensor& tensor, int mode,
                       Partitioning part, const StreamingOptions& stream,
                       pipeline::PlanCache* cache)
    : device_(&device), mode_(mode), part_(part), stream_(stream) {
  validate(part_, UnifiedOptions{}, stream_);
  // Same mode split as MTTKRP (all modes but `mode` are contracted), so the
  // same F-COO layout serves both operations -- the unification at work.
  const ModePlan mp = make_mode_plan_spmttkrp(tensor.order(), mode);
  UST_EXPECTS(mp.product_modes.size() <= kMaxProductModes);
  if (stream_.enabled) {
    fcoo_ = std::make_unique<FcooTensor>(
        FcooTensor::build(tensor, mp.index_modes, mp.product_modes));
    dims_ = fcoo_->dims();
    product_modes_ = fcoo_->product_modes();
    return;
  }
  // acquire_plan keys on the mode plan's op (kSpMTTKRP here), so a TTV and
  // an MTTKRP on the same tensor/mode/partitioning share one cached plan --
  // the layouts are identical, which is the unification at work again.
  const auto bundle =
      pipeline::acquire_plan(device, tensor, mp, part, cache, /*want_coords=*/false);
  plan_ = std::shared_ptr<const UnifiedPlan>(bundle, &bundle->plan);
  dims_ = plan_->dims();
  product_modes_ = plan_->product_modes();
}

UnifiedTtv::~UnifiedTtv() = default;
UnifiedTtv::UnifiedTtv(UnifiedTtv&&) noexcept = default;
UnifiedTtv& UnifiedTtv::operator=(UnifiedTtv&&) noexcept = default;

shard::OpShardState& UnifiedTtv::shard_state(unsigned num_devices) const {
  if (shard_ == nullptr) shard_ = std::make_unique<shard::OpShardState>();
  shard_->ensure_group(*device_, num_devices);
  return *shard_;
}

std::vector<value_t> UnifiedTtv::run(std::span<const std::vector<value_t>> vectors,
                                     const UnifiedOptions& opt) const {
  validate(part_, opt, stream_);
  UST_EXPECTS(vectors.size() == dims_.size());
  for (int m : product_modes_) {
    UST_EXPECTS(vectors[static_cast<std::size_t>(m)].size() ==
                dims_[static_cast<std::size_t>(m)]);
  }
  sim::Device& dev = *device_;

  const index_t out_rows = dims_[static_cast<std::size_t>(mode_)];
  if (out_buf_.size() != out_rows) out_buf_ = dev.alloc<value_t>(out_rows);
  out_buf_.fill(value_t{0});
  OutView out_view{out_buf_.data(), 1, 1};

  if (opt.shard.num_devices > 1) {
    // Sharded path: contraction vectors are staged per shard device inside
    // the expression factory (the plan cache key reuses the MTTKRP op id --
    // the layouts are identical, as for the whole-tensor cache).
    shard::OpShardState& st = shard_state(opt.shard.num_devices);
    const pipeline::HostFcoo host =
        stream_.enabled ? pipeline::host_view(*fcoo_, fcoo_->segment_coords(0))
                        : pipeline::host_view(*plan_);
    std::vector<sim::DeviceBuffer<value_t>> svec(product_modes_.size());
    unsigned staged_for = ~0u;
    shard::execute(*st.group, host, part_, out_view, opt, stream_,
                   TensorOp::kSpMTTKRP, mode_,
                   [&](sim::Device& sdev, unsigned d, const pipeline::ChunkPlan& c) {
                     if (staged_for != d) {
                       for (std::size_t p = 0; p < product_modes_.size(); ++p) {
                         const auto& v =
                             vectors[static_cast<std::size_t>(product_modes_[p])];
                         svec[p] = sdev.alloc<value_t>(v.size());
                         svec[p].copy_from_host(v);
                       }
                       staged_for = d;
                     }
                     TtvExpr expr{};
                     expr.nprod = product_modes_.size();
                     for (std::size_t p = 0; p < product_modes_.size(); ++p) {
                       expr.idx[p] = c.product_indices(p);
                       expr.vec[p] = svec[p].data();
                     }
                     return expr;
                   });
    std::vector<value_t> out(out_rows);
    out_buf_.copy_to_host(out);
    return out;
  }

  vec_bufs_.resize(product_modes_.size());
  for (std::size_t p = 0; p < product_modes_.size(); ++p) {
    const auto& v = vectors[static_cast<std::size_t>(product_modes_[p])];
    if (vec_bufs_[p].size() != v.size()) vec_bufs_[p] = dev.alloc<value_t>(v.size());
    vec_bufs_[p].copy_from_host(v);
  }

  if (stream_.enabled) {
    const pipeline::HostFcoo host = pipeline::host_view(*fcoo_, fcoo_->segment_coords(0));
    pipeline::stream_execute(dev, host, part_, out_view, stream_,
                             [&](const pipeline::ChunkPlan& c) {
                               TtvExpr expr{};
                               expr.nprod = product_modes_.size();
                               for (std::size_t p = 0; p < product_modes_.size(); ++p) {
                                 expr.idx[p] = c.product_indices(p);
                                 expr.vec[p] = vec_bufs_[p].data();
                               }
                               return expr;
                             });
  } else {
    FcooView view = plan_->view();
    TtvExpr expr{};
    expr.nprod = product_modes_.size();
    for (std::size_t p = 0; p < product_modes_.size(); ++p) {
      expr.idx[p] = plan_->product_indices(p).data();
      expr.vec[p] = vec_bufs_[p].data();
    }
    if (opt.backend == ExecBackend::kNative) {
      native::execute(dev, view, out_view, expr, opt.chunk_nnz);
    } else {
      const UnifiedOptions ropt = plan_->resolve_options(1, opt);
      const sim::LaunchConfig cfg = plan_->launch_config(1, ropt);
      std::unique_ptr<sim::CarryChain> chain;
      if (ropt.strategy == ReduceStrategy::kAdjacentSync) {
        chain = std::make_unique<sim::CarryChain>(cfg.total_blocks(), ropt.column_tile);
      }
      sim::launch(dev, cfg, [&](sim::BlockCtx& blk) {
        unified_block_program(blk, view, out_view, ropt, expr, chain.get());
      });
    }
  }

  std::vector<value_t> out(out_rows);
  out_buf_.copy_to_host(out);
  return out;
}

std::vector<value_t> spttv_unified(sim::Device& device, const CooTensor& tensor, int mode,
                                   std::span<const std::vector<value_t>> vectors,
                                   Partitioning part, const UnifiedOptions& opt,
                                   const StreamingOptions& stream) {
  UnifiedTtv op(device, tensor, mode, part, stream);
  return op.run(vectors, opt);
}

}  // namespace ust::core
