#include "core/spttv.hpp"

namespace ust::core {

UnifiedTtv::UnifiedTtv(engine::Engine& engine, const CooTensor& tensor, int mode,
                       Partitioning part, const StreamingOptions& stream,
                       pipeline::PlanCache* cache)
    : engine_(&engine),
      plan_(engine.plan(tensor, engine::OpKind::kSpTTV, mode, part, stream, cache)) {}

UnifiedTtv::UnifiedTtv(sim::Device& device, const CooTensor& tensor, int mode,
                       Partitioning part, const StreamingOptions& stream,
                       pipeline::PlanCache* cache)
    : owned_engine_(engine::Engine::shared_for(device)), engine_(owned_engine_.get()) {
  plan_ = engine_->plan(tensor, engine::OpKind::kSpTTV, mode, part, stream, cache,
                        /*use_engine_cache=*/false);
}

engine::OpRequest UnifiedTtv::request(std::span<const std::vector<value_t>> vectors,
                                      std::vector<value_t>& out,
                                      const UnifiedOptions& opt) const {
  UST_EXPECTS(vectors.size() == plan_->dims.size());
  engine::OpRequest req;
  req.plan = plan_;
  req.inputs.reserve(plan_->product_modes.size());
  for (int m : plan_->product_modes) {
    const auto& v = vectors[static_cast<std::size_t>(m)];
    req.inputs.push_back({v.data(), static_cast<index_t>(v.size()), 1});
  }
  req.out = out.data();
  req.out_rows = static_cast<index_t>(out.size());
  req.out_cols = 1;
  req.options = opt;
  return req;
}

std::vector<value_t> UnifiedTtv::run(std::span<const std::vector<value_t>> vectors,
                                     const UnifiedOptions& opt) const {
  std::vector<value_t> out(plan_->out_rows());
  engine_->run(request(vectors, out, opt));
  return out;
}

std::vector<value_t> spttv_unified(sim::Device& device, const CooTensor& tensor, int mode,
                                   std::span<const std::vector<value_t>> vectors,
                                   Partitioning part, const UnifiedOptions& opt,
                                   const StreamingOptions& stream) {
  UnifiedTtv op(device, tensor, mode, part, stream);
  return op.run(vectors, opt);
}

}  // namespace ust::core
