#include "core/spttv.hpp"

namespace ust::core {

UnifiedTtv::UnifiedTtv(engine::Engine& engine, const CooTensor& tensor, int mode,
                       Partitioning part, const StreamingOptions& stream,
                       pipeline::PlanCache* cache)
    : engine_(&engine),
      plan_(engine.plan(tensor, engine::OpKind::kSpTTV, mode, part, stream, cache)) {}

engine::OpRequest UnifiedTtv::request(std::span<const std::vector<value_t>> vectors,
                                      std::vector<value_t>& out,
                                      const UnifiedOptions& opt) const {
  UST_EXPECTS(vectors.size() == plan_->dims.size());
  engine::OpRequest req;
  req.plan = plan_;
  req.inputs.reserve(plan_->product_modes.size());
  for (int m : plan_->product_modes) {
    const auto& v = vectors[static_cast<std::size_t>(m)];
    req.inputs.push_back({v.data(), static_cast<index_t>(v.size()), 1});
  }
  req.out = out.data();
  req.out_rows = static_cast<index_t>(out.size());
  req.out_cols = 1;
  req.options = opt;
  return req;
}

std::vector<value_t> UnifiedTtv::run(std::span<const std::vector<value_t>> vectors,
                                     const UnifiedOptions& opt) const {
  std::vector<value_t> out(plan_->out_rows());
  engine_->run(request(vectors, out, opt));
  return out;
}

}  // namespace ust::core
