// Unified one-shot SpMTTKRP (Section IV-C): M(i,:) += X(i,j,k) * (B(j,:) *
// C(k,:)) computed directly on the non-zeros -- no intermediate semi-sparse
// tensor, no explicit Khatri-Rao product, no mode conversion. Generalises to
// any order (the Hadamard product runs over all N-1 product-mode factor
// rows).
#pragma once

#include <memory>
#include <span>

#include "core/mode_plan.hpp"
#include "core/unified_plan.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace ust::core {

class UnifiedMttkrp {
 public:
  /// Preprocesses `tensor` for MTTKRP on `mode` (0-based) and uploads the
  /// F-COO arrays to `device`.
  UnifiedMttkrp(sim::Device& device, const CooTensor& tensor, int mode, Partitioning part);

  int mode() const noexcept { return mode_; }
  const UnifiedPlan& plan() const noexcept { return *plan_; }

  /// Runs the kernel. `factors[m]` is the mode-m factor matrix (dims[m] x R);
  /// factors[mode()] is not read. Returns M of shape dims[mode()] x R.
  DenseMatrix run(std::span<const DenseMatrix> factors, const UnifiedOptions& opt = {}) const;

  /// As above but writes into a preallocated output (must be dims[mode] x R).
  void run(std::span<const DenseMatrix> factors, DenseMatrix& out,
           const UnifiedOptions& opt = {}) const;

 private:
  int mode_;
  std::unique_ptr<UnifiedPlan> plan_;
  // Device-resident factor/output staging, grown lazily and reused across
  // iterations (CP-ALS calls run() three times per iteration).
  mutable std::vector<sim::DeviceBuffer<value_t>> factor_bufs_;
  mutable sim::DeviceBuffer<value_t> out_buf_;
};

/// One-shot convenience wrapper (builds a plan, runs once).
DenseMatrix spmttkrp_unified(sim::Device& device, const CooTensor& tensor, int mode,
                             std::span<const DenseMatrix> factors, Partitioning part,
                             const UnifiedOptions& opt = {});

}  // namespace ust::core
