// Unified one-shot SpMTTKRP (Section IV-C): M(i,:) += X(i,j,k) * (B(j,:) *
// C(k,:)) computed directly on the non-zeros -- no intermediate semi-sparse
// tensor, no explicit Khatri-Rao product, no mode conversion. Generalises to
// any order (the Hadamard product runs over all N-1 product-mode factor
// rows).
//
// Since the engine-layer refactor (DESIGN.md §11) this class is a thin
// front-end: it holds an engine::OpPlan (the F-COO handle) and builds an
// OpRequest per run; all backend / streaming / sharding routing lives in
// ust::engine::Engine.
#pragma once

#include <memory>
#include <span>

#include "core/unified_kernel.hpp"
#include "engine/engine.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace ust::core {

class UnifiedMttkrp {
 public:
  /// Preprocesses `tensor` for MTTKRP on `mode` (0-based) through `engine`,
  /// whose primary-device plan cache serves repeated constructions (e.g.
  /// successive CP-ALS invocations) unless `cache` overrides it. With
  /// `stream.enabled` the tensor is kept on the host and every run() streams
  /// bounded-memory chunk plans through the native kernel (src/pipeline/,
  /// DESIGN.md §9); streaming runs bypass the caches. The engine must
  /// outlive this object.
  UnifiedMttkrp(engine::Engine& engine, const CooTensor& tensor, int mode,
                Partitioning part, const StreamingOptions& stream = {},
                pipeline::PlanCache* cache = nullptr);

  int mode() const noexcept { return plan_->mode; }
  const UnifiedPlan& plan() const { return plan_->unified_plan(); }
  bool streaming() const noexcept { return plan_->streaming(); }
  const std::shared_ptr<const engine::OpPlan>& op_plan() const noexcept { return plan_; }
  engine::Engine& engine() const noexcept { return *engine_; }

  /// Runs the kernel. `factors[m]` is the mode-m factor matrix (dims[m] x R);
  /// factors[mode()] is not read. Returns M of shape dims[mode()] x R.
  DenseMatrix run(std::span<const DenseMatrix> factors, const UnifiedOptions& opt = {}) const;

  /// As above but writes into a preallocated output (must be dims[mode] x R).
  void run(std::span<const DenseMatrix> factors, DenseMatrix& out,
           const UnifiedOptions& opt = {}) const;

  /// Builds the engine request without running it (the submit() path:
  /// `engine().submit(op.request(factors, out, opt))`). `factors` and `out`
  /// must outlive the job.
  engine::OpRequest request(std::span<const DenseMatrix> factors, DenseMatrix& out,
                            const UnifiedOptions& opt = {}) const;

  /// Runs through the multi-device sharded executor (src/shard/) regardless
  /// of opt.shard.num_devices (>= 1 allowed, so a one-device baseline can be
  /// measured on the same code path), filling `report` with per-device
  /// timings when non-null. run() routes here automatically when
  /// num_devices > 1; bench_shard calls it directly.
  void run_sharded(std::span<const DenseMatrix> factors, DenseMatrix& out,
                   const UnifiedOptions& opt, shard::Report* report = nullptr) const;

 private:
  engine::Engine* engine_;
  std::shared_ptr<const engine::OpPlan> plan_;
};

}  // namespace ust::core
