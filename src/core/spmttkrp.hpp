// Unified one-shot SpMTTKRP (Section IV-C): M(i,:) += X(i,j,k) * (B(j,:) *
// C(k,:)) computed directly on the non-zeros -- no intermediate semi-sparse
// tensor, no explicit Khatri-Rao product, no mode conversion. Generalises to
// any order (the Hadamard product runs over all N-1 product-mode factor
// rows).
#pragma once

#include <memory>
#include <span>

#include "core/mode_plan.hpp"
#include "core/unified_plan.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace ust::pipeline {
class PlanCache;
}

namespace ust::shard {
struct OpShardState;
struct Report;
}

namespace ust::core {

class UnifiedMttkrp {
 public:
  /// Preprocesses `tensor` for MTTKRP on `mode` (0-based) and uploads the
  /// F-COO arrays to `device`. With a non-null `cache` the device plan is
  /// fetched from / inserted into the LRU plan cache (keyed on the tensor
  /// fingerprint, op, mode and partitioning) so repeated constructions --
  /// e.g. successive CP-ALS invocations -- skip the sort/upload entirely.
  /// With `stream.enabled` the tensor is kept on the host instead and every
  /// run() streams bounded-memory chunk plans through the native kernel
  /// (src/pipeline/, DESIGN.md §9); streaming runs bypass the cache.
  UnifiedMttkrp(sim::Device& device, const CooTensor& tensor, int mode, Partitioning part,
                const StreamingOptions& stream = {}, pipeline::PlanCache* cache = nullptr);

  // Out-of-line because shard::OpShardState is only forward-declared here.
  ~UnifiedMttkrp();
  UnifiedMttkrp(UnifiedMttkrp&&) noexcept;
  UnifiedMttkrp& operator=(UnifiedMttkrp&&) noexcept;

  int mode() const noexcept { return mode_; }
  const UnifiedPlan& plan() const {
    UST_EXPECTS(plan_ != nullptr);
    return *plan_;
  }
  bool streaming() const noexcept { return stream_.enabled; }

  /// Runs the kernel. `factors[m]` is the mode-m factor matrix (dims[m] x R);
  /// factors[mode()] is not read. Returns M of shape dims[mode()] x R.
  DenseMatrix run(std::span<const DenseMatrix> factors, const UnifiedOptions& opt = {}) const;

  /// As above but writes into a preallocated output (must be dims[mode] x R).
  void run(std::span<const DenseMatrix> factors, DenseMatrix& out,
           const UnifiedOptions& opt = {}) const;

  /// Runs through the multi-device sharded executor (src/shard/) regardless
  /// of opt.shard.num_devices (>= 1 allowed, so a one-device baseline can be
  /// measured on the same code path), filling `report` with per-device
  /// timings when non-null. run() routes here automatically when
  /// num_devices > 1; bench_shard calls it directly.
  void run_sharded(std::span<const DenseMatrix> factors, DenseMatrix& out,
                   const UnifiedOptions& opt, shard::Report* report = nullptr) const;

 private:
  void run_streaming(std::span<const DenseMatrix> factors, DenseMatrix& out) const;
  shard::OpShardState& shard_state(unsigned num_devices) const;

  sim::Device* device_;
  int mode_;
  Partitioning part_;
  StreamingOptions stream_;
  // plan_ is null when streaming; when cached it aliases into (and co-owns)
  // the cache bundle, so it stays valid past eviction.
  std::shared_ptr<const UnifiedPlan> plan_;
  std::unique_ptr<FcooTensor> fcoo_;  // host tensor, streaming only
  std::vector<index_t> dims_;
  std::vector<int> product_modes_;
  // Device-resident factor/output staging, grown lazily and reused across
  // iterations (CP-ALS calls run() three times per iteration).
  mutable std::vector<sim::DeviceBuffer<value_t>> factor_bufs_;
  mutable sim::DeviceBuffer<value_t> out_buf_;
  // Sharding state (device group + per-device plan caches), created on the
  // first sharded run and kept across runs so CP-ALS iterations hit the
  // shard-plan caches.
  mutable std::unique_ptr<shard::OpShardState> shard_;
};

/// One-shot convenience wrapper (builds a plan, runs once).
DenseMatrix spmttkrp_unified(sim::Device& device, const CooTensor& tensor, int mode,
                             std::span<const DenseMatrix> factors, Partitioning part,
                             const UnifiedOptions& opt = {},
                             const StreamingOptions& stream = {});

}  // namespace ust::core
