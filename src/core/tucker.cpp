#include "core/tucker.hpp"

#include <cmath>

#include "linalg/dense_ops.hpp"
#include "linalg/eigen.hpp"
#include "util/prng.hpp"

namespace ust::core {

namespace {

/// Modified Gram-Schmidt orthonormalisation of the columns of `a`.
void orthonormalize_columns(DenseMatrix& a, Prng& rng) {
  for (index_t c = 0; c < a.cols(); ++c) {
    for (index_t prev = 0; prev < c; ++prev) {
      double proj = 0.0;
      for (index_t i = 0; i < a.rows(); ++i) {
        proj += static_cast<double>(a(i, c)) * a(i, prev);
      }
      for (index_t i = 0; i < a.rows(); ++i) {
        a(i, c) = static_cast<value_t>(a(i, c) - proj * a(i, prev));
      }
    }
    double norm = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) norm += static_cast<double>(a(i, c)) * a(i, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate column: replace with a random direction and retry once.
      for (index_t i = 0; i < a.rows(); ++i) a(i, c) = rng.next_float(-1.0f, 1.0f);
      --c;
      continue;
    }
    for (index_t i = 0; i < a.rows(); ++i) {
      a(i, c) = static_cast<value_t>(a(i, c) / norm);
    }
  }
}

/// Leading `r` left singular vectors of `y` (tall I x C, C small) via the
/// Gram trick: eig(Y^T Y) = V diag(s^2) V^T, U = Y V diag(1/s).
DenseMatrix leading_left_singular(const DenseMatrix& y, index_t r, Prng& rng) {
  const DenseMatrix w = linalg::gram(y);
  const auto eig = linalg::jacobi_eigen_symmetric(w);
  DenseMatrix u(y.rows(), r);
  for (index_t c = 0; c < r; ++c) {
    const double s2 = c < static_cast<index_t>(eig.values.size()) ? eig.values[c] : 0.0;
    if (s2 <= 1e-24) continue;  // leave zero; orthonormalisation will fill in
    const double inv_s = 1.0 / std::sqrt(s2);
    for (index_t i = 0; i < y.rows(); ++i) {
      double sum = 0.0;
      for (index_t k = 0; k < y.cols(); ++k) {
        sum += static_cast<double>(y(i, k)) * eig.vectors(k, c);
      }
      u(i, c) = static_cast<value_t>(sum * inv_s);
    }
  }
  orthonormalize_columns(u, rng);
  return u;
}

/// Shared HOOI driver over prebuilt per-mode TTMc front-ends.
TuckerResult tucker_hooi_impl(std::vector<UnifiedTtmc>& ops, const CooTensor& tensor,
                              const TuckerOptions& options) {
  Prng rng(options.seed);
  TuckerResult result;
  result.factors.reserve(3);
  for (int m = 0; m < 3; ++m) {
    DenseMatrix f(tensor.dim(m), options.core_dims[static_cast<std::size_t>(m)]);
    f.fill_random(rng, -1.0f, 1.0f);
    orthonormalize_columns(f, rng);
    result.factors.push_back(std::move(f));
  }

  const double norm_x = tensor.frobenius_norm();
  double prev_fit = 0.0;
  DenseMatrix last_y;  // Y(3) from the final mode update, for core assembly

  for (int it = 0; it < options.max_iterations; ++it) {
    for (int n = 0; n < 3; ++n) {
      const int a = n == 0 ? 1 : 0;
      const int b = n == 2 ? 1 : 2;
      const DenseMatrix y = ops[static_cast<std::size_t>(n)].run(
          result.factors[static_cast<std::size_t>(a)],
          result.factors[static_cast<std::size_t>(b)], options.kernel);
      result.factors[static_cast<std::size_t>(n)] = leading_left_singular(
          y, options.core_dims[static_cast<std::size_t>(n)], rng);
      if (n == 2) last_y = y;
    }

    // Core G(3) = U3^T * Y(3); since U3 is orthonormal, ||G|| measures the
    // captured energy and fit = 1 - sqrt(||X||^2 - ||G||^2) / ||X||.
    const DenseMatrix g3 =
        linalg::matmul(linalg::transpose(result.factors[2]), last_y);
    const double norm_g = std::sqrt(linalg::frobenius_norm_squared(g3));
    const double residual2 = std::max(0.0, norm_x * norm_x - norm_g * norm_g);
    const double fit = norm_x == 0.0 ? 1.0 : 1.0 - std::sqrt(residual2) / norm_x;
    result.fit_history.push_back(fit);
    result.iterations = it + 1;
    result.fit = fit;
    if (it > 0 && std::abs(fit - prev_fit) < options.fit_tolerance) {
      result.converged = true;
      break;
    }
    prev_fit = fit;
  }

  // Assemble the core tensor: G = X x1 U1^T x2 U2^T x3 U3^T. Reuse the last
  // Y(3) = X x1 U1 x2 U2 matricisation: G(3) = U3^T Y(3) with Y(3) columns
  // ordered by (r1, r2) per the TTMc Kronecker layout.
  const index_t r1 = options.core_dims[0];
  const index_t r2 = options.core_dims[1];
  const index_t r3 = options.core_dims[2];
  const DenseMatrix g3 = linalg::matmul(linalg::transpose(result.factors[2]), last_y);
  DenseTensor core({r1, r2, r3});
  for (index_t c3 = 0; c3 < r3; ++c3) {
    for (index_t c1 = 0; c1 < r1; ++c1) {
      for (index_t c2 = 0; c2 < r2; ++c2) {
        const std::array<index_t, 3> idx{c1, c2, c3};
        core.at(idx) = g3(c3, c1 * r2 + c2);
      }
    }
  }
  result.core = std::move(core);
  return result;
}

void validate_tucker_options(const CooTensor& tensor, const TuckerOptions& options) {
  UST_EXPECTS(tensor.order() == 3);
  for (int m = 0; m < 3; ++m) {
    UST_EXPECTS(options.core_dims[static_cast<std::size_t>(m)] >= 1);
    UST_EXPECTS(options.core_dims[static_cast<std::size_t>(m)] <= tensor.dim(m));
  }
}

}  // namespace

TuckerResult tucker_hooi_unified(engine::Engine& engine, const CooTensor& tensor,
                                 const TuckerOptions& options) {
  validate_tucker_options(tensor, options);
  // One TTMc plan per mode, built once (as with CP's per-mode F-COO plans);
  // the engine's primary cache (or options.plan_cache) turns repeated solver
  // calls into per-mode cache hits.
  std::vector<UnifiedTtmc> ops;
  ops.reserve(3);
  for (int m = 0; m < 3; ++m) {
    ops.emplace_back(engine, tensor, m, options.part, options.streaming,
                     options.plan_cache);
  }
  return tucker_hooi_impl(ops, tensor, options);
}

}  // namespace ust::core
