// Tucker decomposition via HOOI (higher-order orthogonal iteration) built on
// the unified SpTTMc kernel. The paper implements CP and notes "a similar
// approach can be used to implement Tucker using unified" (Section IV-D);
// this module is that extension: each mode update computes the TTM chain
// with the other factors in one shot on the device, then extracts the
// leading left singular subspace with a small Gram eigen-solve.
#pragma once

#include <array>
#include <vector>

#include "core/spttmc.hpp"
#include "sim/device.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace ust::core {

struct TuckerOptions {
  std::array<index_t, 3> core_dims = {4, 4, 4};  // (R1, R2, R3)
  int max_iterations = 20;
  double fit_tolerance = 1e-5;
  Partitioning part;
  /// Kernel options for every TTMc; kernel.shard.num_devices > 1 shards each
  /// mode update across a simulated device group (see CpOptions::kernel).
  UnifiedOptions kernel;
  /// Per-mode TTMc plans come from this LRU cache when non-null (see
  /// CpOptions::plan_cache); streaming chunks every TTMc when enabled.
  pipeline::PlanCache* plan_cache = nullptr;
  StreamingOptions streaming;
  std::uint64_t seed = 42;
};

struct TuckerResult {
  std::vector<DenseMatrix> factors;  // orthonormal columns, one per mode
  DenseTensor core;                  // R1 x R2 x R3
  double fit = 0.0;                  // 1 - ||X - model||_F / ||X||_F
  int iterations = 0;
  bool converged = false;
  std::vector<double> fit_history;
};

/// Runs HOOI on a 3-order sparse tensor through `engine` (per-mode TTMc
/// plans in the engine's primary cache unless options.plan_cache overrides).
TuckerResult tucker_hooi_unified(engine::Engine& engine, const CooTensor& tensor,
                                 const TuckerOptions& options);

}  // namespace ust::core
