// Parameter auto-tuner for the (threadlen, BLOCK_SIZE) launch configuration
// (the paper's Section V, Figure 5 / Table V experiment). The sweep measures
// a caller-supplied runner over the full grid and reports every sample so the
// tuning surface can be printed.
#pragma once

#include <functional>
#include <vector>

#include "tensor/fcoo.hpp"
#include "util/common.hpp"

namespace ust::core {

struct TuneSample {
  Partitioning part;
  double seconds = 0.0;
};

struct TuneResult {
  Partitioning best;
  double best_seconds = 0.0;
  std::vector<TuneSample> samples;  // full sweep, row-major over the grid
};

/// The paper's sweep axes: threadlen 8..64 step 8, BLOCK_SIZE {32,...,1024}.
std::vector<unsigned> default_threadlens();
std::vector<unsigned> default_block_sizes();

/// Runs `runner` (which should execute the operation once and return elapsed
/// seconds, typically a median of repeats) for every configuration.
/// Configurations whose runner throws (e.g. shared-memory overflow) are
/// skipped.
TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens = default_threadlens(),
                std::vector<unsigned> block_sizes = default_block_sizes());

}  // namespace ust::core
