// Parameter auto-tuner for the (threadlen, BLOCK_SIZE) launch configuration
// (the paper's Section V, Figure 5 / Table V experiment), extended with the
// execution backend, the native worker-chunk size
// (UnifiedOptions::chunk_nnz), the shard device count
// (ShardOptions::num_devices) and the native rank-block width
// (UnifiedOptions::rank_block) as third through sixth grid axes. The
// sweep measures a caller-supplied runner over the full grid and reports
// every sample so the tuning surface can be printed. Chunk-axis values are
// aligned up to each threadlen and deduplicated per (threadlen, block,
// backend) cell, so aliasing caps are never timed twice. The rank-block
// axis is bitwise neutral (DESIGN.md §13) -- it only trades accumulator-tile
// locality against extra passes over the non-zero stream -- and, like chunk
// and devices, is native-only: sim samples are taken at rank_block 0.
//
// Runners should build their ops against ONE engine::Engine (see
// bench_tuning): the engine owns the device group and per-device plan
// caches, so sharded cells reuse replica devices instead of re-creating a
// group per cell, and revisits of a partitioning fetch the cached plan
// instead of re-sorting the tensor.
#pragma once

#include <functional>
#include <vector>

#include "core/unified_kernel.hpp"
#include "tensor/fcoo.hpp"
#include "util/common.hpp"

namespace ust::core {

struct TuneSample {
  Partitioning part;
  ExecBackend backend = ExecBackend::kNative;
  nnz_t chunk_nnz = 0;  // native worker-chunk cap (0 = auto); aligned up to threadlen
  unsigned num_devices = 1;  // shard device count (native only)
  index_t rank_block = 0;    // native accumulator-tile width cap (0 = auto)
  double seconds = 0.0;
};

struct TuneResult {
  Partitioning best;
  ExecBackend best_backend = ExecBackend::kNative;
  nnz_t best_chunk_nnz = 0;
  unsigned best_num_devices = 1;
  index_t best_rank_block = 0;
  double best_seconds = 0.0;
  std::vector<TuneSample> samples;  // full sweep, row-major over the grid
};

/// The paper's sweep axes: threadlen 8..64 step 8, BLOCK_SIZE {32,...,1024}.
std::vector<unsigned> default_threadlens();
std::vector<unsigned> default_block_sizes();
/// Backend axis of the extended search grid: native first (the default
/// production engine), then the simulator.
std::vector<ExecBackend> default_backends();
/// Chunk-size axis: auto plus two fixed caps. Values are aligned up to each
/// threadlen before measuring (chunk_nnz must be a threadlen multiple); the
/// chunk axis only applies to the native backend -- sim samples are taken at
/// chunk 0 only. Two axis values that alias to the same aligned cap under a
/// given threadlen are measured once.
std::vector<nnz_t> default_chunk_nnzs();
/// Shard-device axis of the extended grid: single-device plus one sharded
/// configuration. Applies to the native backend only (sharding is rejected
/// on the sim backend); sim samples are taken at num_devices == 1 only.
std::vector<unsigned> default_num_devices();
/// Rank-block axis: auto (kAutoRankBlock's full-L1 tile) plus a narrow and a
/// medium accumulator-tile cap. Native-only and bitwise neutral; sim samples
/// are taken at rank_block 0 only.
std::vector<index_t> default_rank_blocks();

/// Runs `runner` (which should execute the operation once and return elapsed
/// seconds, typically a median of repeats) for every configuration.
/// Configurations whose runner throws (e.g. shared-memory overflow) are
/// skipped. Partitioning-only sweep; samples carry backend == kNative.
TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens = default_threadlens(),
                std::vector<unsigned> block_sizes = default_block_sizes());

/// Extended sweep with the execution backend as a third grid axis: the
/// runner is measured for every (partitioning, backend) pair at chunk 0 and
/// the best sample records which backend won.
TuneResult tune_backends(const std::function<double(Partitioning, ExecBackend)>& runner,
                         std::vector<unsigned> threadlens = default_threadlens(),
                         std::vector<unsigned> block_sizes = default_block_sizes(),
                         std::vector<ExecBackend> backends = default_backends());

/// Four-axis sweep: (partitioning, backend, chunk_nnz). The runner receives
/// the chunk cap already aligned up to the threadlen; sim samples skip
/// non-zero chunk values (the knob is native-only).
TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t)>& runner,
    std::vector<unsigned> threadlens = default_threadlens(),
    std::vector<unsigned> block_sizes = default_block_sizes(),
    std::vector<ExecBackend> backends = default_backends(),
    std::vector<nnz_t> chunk_nnzs = default_chunk_nnzs());

/// Five-axis sweep: (partitioning, backend, chunk_nnz, num_devices). Sim
/// samples are taken only at chunk 0 and one device; aligned chunk caps
/// that alias within a (threadlen, block, backend) cell are measured once.
TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t, unsigned)>& runner,
    std::vector<unsigned> threadlens = default_threadlens(),
    std::vector<unsigned> block_sizes = default_block_sizes(),
    std::vector<ExecBackend> backends = default_backends(),
    std::vector<nnz_t> chunk_nnzs = default_chunk_nnzs(),
    std::vector<unsigned> num_devices = default_num_devices());

/// Full six-axis sweep: (partitioning, backend, chunk_nnz, num_devices,
/// rank_block). Sim samples are taken only at chunk 0, one device and
/// rank_block 0; the rank-block axis never changes results, only locality.
TuneResult tune_backends(
    const std::function<double(Partitioning, ExecBackend, nnz_t, unsigned, index_t)>& runner,
    std::vector<unsigned> threadlens = default_threadlens(),
    std::vector<unsigned> block_sizes = default_block_sizes(),
    std::vector<ExecBackend> backends = default_backends(),
    std::vector<nnz_t> chunk_nnzs = default_chunk_nnzs(),
    std::vector<unsigned> num_devices = default_num_devices(),
    std::vector<index_t> rank_blocks = default_rank_blocks());

/// Short display name for a backend ("native" / "sim").
const char* backend_name(ExecBackend backend);

}  // namespace ust::core
