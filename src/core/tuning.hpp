// Parameter auto-tuner for the (threadlen, BLOCK_SIZE) launch configuration
// (the paper's Section V, Figure 5 / Table V experiment). The sweep measures
// a caller-supplied runner over the full grid and reports every sample so the
// tuning surface can be printed.
#pragma once

#include <functional>
#include <vector>

#include "core/unified_kernel.hpp"
#include "tensor/fcoo.hpp"
#include "util/common.hpp"

namespace ust::core {

struct TuneSample {
  Partitioning part;
  ExecBackend backend = ExecBackend::kNative;
  double seconds = 0.0;
};

struct TuneResult {
  Partitioning best;
  ExecBackend best_backend = ExecBackend::kNative;
  double best_seconds = 0.0;
  std::vector<TuneSample> samples;  // full sweep, row-major over the grid
};

/// The paper's sweep axes: threadlen 8..64 step 8, BLOCK_SIZE {32,...,1024}.
std::vector<unsigned> default_threadlens();
std::vector<unsigned> default_block_sizes();
/// Backend axis of the extended search grid: native first (the default
/// production engine), then the simulator.
std::vector<ExecBackend> default_backends();

/// Runs `runner` (which should execute the operation once and return elapsed
/// seconds, typically a median of repeats) for every configuration.
/// Configurations whose runner throws (e.g. shared-memory overflow) are
/// skipped. Partitioning-only sweep; samples carry backend == kNative.
TuneResult tune(const std::function<double(Partitioning)>& runner,
                std::vector<unsigned> threadlens = default_threadlens(),
                std::vector<unsigned> block_sizes = default_block_sizes());

/// Extended sweep with the execution backend as a third grid axis: the
/// runner is measured for every (partitioning, backend) pair and the best
/// sample records which backend won.
TuneResult tune_backends(const std::function<double(Partitioning, ExecBackend)>& runner,
                         std::vector<unsigned> threadlens = default_threadlens(),
                         std::vector<unsigned> block_sizes = default_block_sizes(),
                         std::vector<ExecBackend> backends = default_backends());

/// Short display name for a backend ("native" / "sim").
const char* backend_name(ExecBackend backend);

}  // namespace ust::core
