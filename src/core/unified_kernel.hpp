// The unified parallel kernel skeleton (Section IV-D of the paper).
//
// All three sparse tensor operations (SpTTM, SpMTTKRP, SpTTMc) execute the
// SAME block program; they differ only in the per-non-zero product expression
// (a matrix-row gather for SpTTM, a Hadamard product of rows for SpMTTKRP, a
// Kronecker product of rows for SpTTMc) -- this is the paper's central
// unification claim, expressed here as a C++ template parameter.
//
// Launch geometry (paper Figure 4): a 2-D grid of 1-D thread blocks.
//   blockIdx.x -> a partition of BLOCK_SIZE * threadlen non-zeros
//   blockIdx.y -> a tile of dense-factor columns (the rank dimension)
// Because block shape never depends on the rank, performance is insensitive
// to rank changes (the Figure 8 experiment).
//
// Reduction (the paper's "enabling segmented scan"):
//   1. Each thread walks its `threadlen` non-zeros, accumulating a running
//      sum that restarts at every bit-flag head. Segments that both start
//      and end inside the thread are written directly -- conflict-free.
//   2. The per-thread trailing partial sums are combined with a block-wide
//      segmented scan built from warp-level (shuffle-style) segmented scans
//      plus a warp-carry scan, exactly the Sengupta et al. construction.
//   3. Only segments that cross a block boundary are committed with atomic
//      adds -- at most one per block edge -- which is how the method avoids
//      the atomic-per-non-zero cost of COO baselines (kAllAtomic reproduces
//      that cost for the ablation study).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "sim/collectives.hpp"
#include "sim/executor.hpp"
#include "tensor/fcoo.hpp"
#include "util/common.hpp"

namespace ust::core {

/// Reduction strategy; kSegmentedScan is the paper's method, kAdjacentSync
/// is its fully fused form (Section IV-D's "adjacent synchronization is used
/// to perform inter-block communication and to fuse the kernels"), and the
/// atomics variants are ablation baselines (see bench/bench_ablation.cpp).
enum class ReduceStrategy {
  kSegmentedScan,  // warp/block segmented scan, atomics only at block edges
  kAdjacentSync,   // segmented scan + StreamScan carry chain: zero atomics
  kThreadAtomic,   // per-thread boundary partials committed atomically
  kAllAtomic       // one atomic per non-zero (COO-style; no local reuse)
};

/// Which engine executes the unified plan (DESIGN.md §8). kSim runs the
/// paper-faithful GPU execution-model simulator (blocks, warps, segmented
/// scans -- the fidelity/ablation oracle, where ReduceStrategy matters).
/// kNative runs the same FcooView metadata as one tight loop per thread-pool
/// worker with a single carry handoff per worker boundary (the kAdjacentSync
/// dataflow, zero atomics); ReduceStrategy and column_tile are ignored
/// there. Both backends agree within float tolerance
/// (tests/backend_equivalence_test.cpp).
enum class ExecBackend {
  kSim,     // GPU execution-model simulator (src/sim/)
  kNative   // direct thread-pool execution (src/core/native_exec.hpp)
};

/// How the sharder balances work across devices (DESIGN.md §10). Raw
/// nnz-splitting is the obvious policy but mis-sizes shards when segment
/// lengths are skewed (the per-segment commit cost is invisible to it);
/// balancing by segment count recovers the imbalance for commit-heavy
/// tensors, per Nisa et al. (load-balanced MTTKRP) and Wijeratne et al.
/// (mode-aware remapping).
enum class ShardBalance {
  kNnz,       // equalise non-zeros per shard
  kSegments   // equalise segment count per shard
};

/// Multi-device sharding of one unified operation (src/shard/). num_devices
/// == 1 means single-device execution (the default); > 1 splits the native
/// worker grid into per-device shards whose results are merged bitwise
/// identically to a single-device run (native backend only).
struct ShardOptions {
  unsigned num_devices = 1;
  ShardBalance balance = ShardBalance::kSegments;
};

/// Execution options for a unified kernel run. The partitioning itself
/// (threadlen, block size) is a property of the UnifiedPlan, because the
/// per-partition metadata is precomputed for it.
///
/// column_tile is the number of rank columns each block computes per pass
/// over its non-zeros. The paper's CUDA layout is tile = 1 (grid.y = R, one
/// column per block) -- on a real GPU the R column-blocks run concurrently
/// on different SMs, so re-reading the tensor per column is hidden by the
/// memory hierarchy. On the CPU-backed simulator that re-read is paid in
/// full, so the default (0) auto-selects the widest tile that fits shared
/// memory while keeping enough blocks to occupy the worker pool; set 1 to
/// reproduce the paper's layout (see bench_ablation).
struct UnifiedOptions {
  ReduceStrategy strategy = ReduceStrategy::kSegmentedScan;
  unsigned column_tile = 0;  // 0 = auto; 1 = paper layout; n = fixed tile
  ExecBackend backend = ExecBackend::kNative;  // sim path is the oracle
  /// Native backend only: caps the worker-chunk size (in non-zeros) of the
  /// accumulation grid. 0 = auto (~4 chunks per pool worker, as before);
  /// non-zero values must be a multiple of the plan's threadlen (see
  /// core::validate). The streaming pipeline shares this grid, which is what
  /// makes chunked execution bitwise identical to single-shot native; the
  /// auto-tuner sweeps it as a fourth grid axis (core::tune_backends).
  nnz_t chunk_nnz = 0;
  /// Native backend only: caps the accumulator-tile width (output columns)
  /// one pass over a chunk's non-zeros accumulates, so wide outputs
  /// (SpTTMc's r0*r1 columns, large-rank MTTKRP) tile through L1 instead of
  /// thrashing the per-chunk tile. 0 = auto (native::kAutoRankBlock). Any
  /// value is bitwise neutral -- columns are independent, so blocking never
  /// changes a column's per-non-zero operation order -- which is why the
  /// auto-tuner can sweep it freely as a sixth grid axis.
  index_t rank_block = 0;
  /// Multi-device sharding (native backend only; see src/shard/ and
  /// DESIGN.md §10). The tuner sweeps num_devices as a fifth grid axis.
  ShardOptions shard = {};
};

/// Options for the streaming pipeline (src/pipeline/): partitions the F-COO
/// non-zeros into bounded-memory chunks and drives them through a
/// double-buffered plan-build/execute pipeline instead of uploading one
/// monolithic UnifiedPlan (DESIGN.md §9). Native backend only.
struct StreamingOptions {
  bool enabled = false;
  /// Device-byte budget per resident chunk plan. Consecutive worker chunks
  /// are grouped until the budget is reached (always at least one worker
  /// chunk per streamed chunk, so this is a soft bound). 0 = no grouping:
  /// every worker chunk becomes its own streamed chunk.
  std::size_t chunk_bytes = 64u << 20;
  /// Worker-chunk cap in non-zeros, the streaming analogue of
  /// UnifiedOptions::chunk_nnz (must be a multiple of threadlen when
  /// non-zero). 0 = derive from chunk_bytes. Run streaming and single-shot
  /// with the same resolved value and the results are bitwise identical.
  nnz_t chunk_nnz = 0;
  /// Chunk plans buffered ahead of execution (>= 1); 2 = classic double
  /// buffering: the plan for chunk k+1 is built/uploaded while chunk k runs.
  unsigned max_in_flight = 2;
};

/// Thrown by core::validate for malformed launch/streaming options.
class InvalidOptions : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Central option validation used by all four unified ops (and UnifiedPlan):
/// rejects threadlen == 0, block_size == 0, a chunk_nnz that is not a
/// multiple of threadlen, streaming on the sim backend, max_in_flight == 0,
/// shard.num_devices == 0, and sharding on the sim backend. Throws
/// InvalidOptions.
void validate(const Partitioning& part);
void validate(const Partitioning& part, const UnifiedOptions& opt);
void validate(const Partitioning& part, const UnifiedOptions& opt,
              const StreamingOptions& stream);

/// Raw device-side view of an F-COO tensor plus partition metadata, passed
/// by value into kernels (pointers reference DeviceBuffer storage owned by a
/// UnifiedPlan).
struct FcooView {
  const std::uint64_t* bf_words = nullptr;  // packed head flags
  const value_t* vals = nullptr;
  const index_t* thread_first_seg = nullptr;  // segment id of each partition's first nnz
  const index_t* seg_row = nullptr;           // output row of each segment
  nnz_t nnz = 0;
  nnz_t num_segments = 0;
  unsigned threadlen = 8;  // non-zeros per thread (partitioning)

  bool head(nnz_t x) const { return (bf_words[x >> 6] >> (x & 63)) & 1ull; }
};

/// Output view: row-major matrix out[row * ld + col].
struct OutView {
  value_t* data = nullptr;
  index_t ld = 0;        // leading dimension (number of output columns)
  index_t num_cols = 0;  // total columns of this operation
};

namespace detail {

/// Block-wide inclusive segmented scan over per-thread trailing partials.
/// `vals`/`flags` are lane arrays of size block_dim; flags are head flags and
/// are replaced by propagated flags ("run ending at this lane contains a
/// head inside the block"). Built hierarchically from warp-level scans so the
/// dataflow matches the shuffle implementation on a real GPU.
inline void block_segmented_scan(std::span<float> vals, std::span<std::uint8_t> flags,
                                 std::span<float> warp_carry,
                                 std::span<std::uint8_t> warp_flag) {
  const std::size_t n = vals.size();
  UST_EXPECTS(flags.size() == n);
  const std::size_t nwarps = ceil_div<std::size_t>(n, sim::kWarpSize);
  UST_EXPECTS(warp_carry.size() >= nwarps && warp_flag.size() >= nwarps);

  for (std::size_t w = 0; w < nwarps; ++w) {
    const std::size_t lo = w * sim::kWarpSize;
    const std::size_t len = std::min<std::size_t>(sim::kWarpSize, n - lo);
    sim::warp_segmented_scan_add(vals.subspan(lo, len), flags.subspan(lo, len));
    warp_carry[w] = vals[lo + len - 1];
    warp_flag[w] = flags[lo + len - 1];
  }
  if (nwarps > 1) {
    // Scan the warp carries (at most 32 for block_dim <= 1024).
    sim::warp_segmented_scan_add(warp_carry.first(nwarps), warp_flag.first(nwarps));
    // Add the incoming carry to each warp's leading run (propagated flag 0).
    for (std::size_t w = 1; w < nwarps; ++w) {
      const float incoming = warp_carry[w - 1];
      const std::uint8_t incoming_flag = warp_flag[w - 1];
      const std::size_t lo = w * sim::kWarpSize;
      const std::size_t len = std::min<std::size_t>(sim::kWarpSize, n - lo);
      for (std::size_t l = 0; l < len; ++l) {
        if (flags[lo + l] == 0) {
          vals[lo + l] += incoming;
          flags[lo + l] = incoming_flag;
        }
      }
    }
  }
}

/// Per-lane state captured by the thread-local pass. Output rows are
/// resolved (via f.seg_row) once here, so the per-column commit loops of
/// phases 2-3 never re-read the segment tables.
struct LaneState {
  index_t head_row = 0;  // output row of the segment closed by the first head
  index_t tail_row = 0;  // output row of the segment open at partition end
  std::uint8_t has_head_partial = 0;
  std::uint8_t tail_closes = 0;  // partition end coincides with a segment end
  std::uint8_t active = 0;
};

}  // namespace detail

/// The unified block program. `Expr` is invocable as expr(x, col) -> float,
/// returning the product-mode contribution of non-zero x for output column
/// col (the value multiplier is applied by the kernel). The reduction
/// strategy is a template parameter so the per-non-zero inner loop carries
/// no strategy branches.
template <ReduceStrategy kStrategy, class Expr>
void unified_block_program_impl(sim::BlockCtx& blk, const FcooView& f, const OutView& out,
                                const UnifiedOptions& opt, const Expr& expr,
                                sim::CarryChain* chain = nullptr) {
  const unsigned block_dim = blk.block_dim();
  const unsigned threadlen = f.threadlen;
  const nnz_t block_base =
      static_cast<nnz_t>(blk.block_idx().x) * block_dim * threadlen;
  if (block_base >= f.nnz) return;

  const index_t col0 = static_cast<index_t>(blk.block_idx().y) * opt.column_tile;
  const index_t cols =
      std::min<index_t>(opt.column_tile, out.num_cols > col0 ? out.num_cols - col0 : 0);
  if (cols == 0) return;

  // Shared-memory lane arrays. tails/heads hold each thread's per-column
  // boundary partials in *thread-contiguous* layout ([t * cols + c]) so the
  // phase-1 commits write one cache-friendly tile per lane -- the same
  // accumulator shape the native backend uses. Phase 2 gathers one column's
  // lane values into scan_vals before each block scan.
  auto states = blk.shared_array<detail::LaneState>(block_dim);
  auto tails = blk.shared_array<float>(static_cast<std::size_t>(block_dim) * cols);
  auto heads = blk.shared_array<float>(static_cast<std::size_t>(block_dim) * cols);
  auto flags0 = blk.shared_array<std::uint8_t>(block_dim);
  auto flags = blk.shared_array<std::uint8_t>(block_dim);
  auto warp_carry = blk.shared_array<float>(blk.warp_count());
  auto warp_flag = blk.shared_array<std::uint8_t>(blk.warp_count());
  auto col_sum = blk.shared_array<float>(cols);  // running sums of one thread
  auto scan_vals = blk.shared_array<float>(block_dim);  // one column's lanes

  const nnz_t thread0 = block_base / threadlen;  // global index of lane 0's partition
  unsigned last_active = 0;

  // ---- Phase 1: thread-local pass ----------------------------------------
  for (unsigned t = 0; t < block_dim; ++t) {
    detail::LaneState st;
    const nnz_t s = block_base + static_cast<nnz_t>(t) * threadlen;
    float* tail_tile = &tails[static_cast<std::size_t>(t) * cols];
    float* head_tile = &heads[static_cast<std::size_t>(t) * cols];
    std::fill(tail_tile, tail_tile + cols, 0.0f);
    std::fill(head_tile, head_tile + cols, 0.0f);
    flags0[t] = 1;  // inactive lanes terminate scan runs
    if (s >= f.nnz) {
      states[t] = st;
      continue;
    }
    st.active = 1;
    last_active = t;
    const nnz_t e = std::min<nnz_t>(s + threadlen, f.nnz);
    index_t seg = f.thread_first_seg[thread0 + t];
    const bool starts_fresh = f.head(s);
    bool closed_any = false;
    for (index_t c = 0; c < cols; ++c) col_sum[c] = 0.0f;

    // The bit-flag word is cached across up to 64 non-zeros (the "read bf in
    // registers" optimisation the format is designed for).
    std::uint64_t bf_word = f.bf_words[s >> 6];
    for (nnz_t x = s; x < e; ++x) {
      if ((x & 63) == 0) bf_word = f.bf_words[x >> 6];
      const bool is_head = (bf_word >> (x & 63)) & 1ull;
      if (x > s && is_head) {
        // The run [.., x-1] of segment `seg` closes here. The output row and
        // its base pointer are resolved once, outside the column loop.
        const index_t row = f.seg_row[seg];
        value_t* const out_row = &out.data[static_cast<std::size_t>(row) * out.ld + col0];
        if (!starts_fresh && !closed_any) {
          if constexpr (kStrategy == ReduceStrategy::kThreadAtomic) {
            for (index_t c = 0; c < cols; ++c) {
              blk.atomic_add_global(out_row + c, col_sum[c]);
            }
          } else {
            st.has_head_partial = 1;
            st.head_row = row;
            for (index_t c = 0; c < cols; ++c) head_tile[c] = col_sum[c];
          }
        } else {
          // Interior segment: fully contained in this thread; direct write.
          for (index_t c = 0; c < cols; ++c) out_row[c] += col_sum[c];
        }
        closed_any = true;
        ++seg;
        for (index_t c = 0; c < cols; ++c) col_sum[c] = 0.0f;
      }
      const float v = f.vals[x];
      if constexpr (kStrategy == ReduceStrategy::kAllAtomic) {
        // COO-style: no local accumulation at all (ablation baseline).
        value_t* const out_row =
            &out.data[static_cast<std::size_t>(f.seg_row[seg]) * out.ld + col0];
        for (index_t c = 0; c < cols; ++c) {
          blk.atomic_add_global(out_row + c, v * expr(x, col0 + c));
        }
      } else {
        for (index_t c = 0; c < cols; ++c) col_sum[c] += v * expr(x, col0 + c);
      }
    }

    st.tail_row = f.seg_row[seg];
    st.tail_closes = (e >= f.nnz) || f.head(e);
    flags0[t] = (starts_fresh || closed_any) ? 1 : 0;
    if constexpr (kStrategy == ReduceStrategy::kAllAtomic) {
      states[t] = st;
      continue;
    }
    if constexpr (kStrategy == ReduceStrategy::kThreadAtomic) {
      // Commit the trailing partial immediately: direct when the segment is
      // fully contained in this thread, atomic otherwise.
      value_t* const out_row =
          &out.data[static_cast<std::size_t>(st.tail_row) * out.ld + col0];
      const bool exclusive = (flags0[t] != 0) && st.tail_closes;
      for (index_t c = 0; c < cols; ++c) {
        if (exclusive) {
          out_row[c] += col_sum[c];
        } else {
          blk.atomic_add_global(out_row + c, col_sum[c]);
        }
      }
      states[t] = st;
      continue;
    }
    for (index_t c = 0; c < cols; ++c) tail_tile[c] = col_sum[c];
    states[t] = st;
  }

  if constexpr (kStrategy != ReduceStrategy::kSegmentedScan &&
                kStrategy != ReduceStrategy::kAdjacentSync) {
    return;
  }

  constexpr bool kUseCarry = (kStrategy == ReduceStrategy::kAdjacentSync);
  if constexpr (kUseCarry) UST_EXPECTS(chain != nullptr);
  // Carry-chain slots are linear block ids; chains run along blockIdx.x for
  // a fixed blockIdx.y, which is contiguous in dispatch order.
  const std::size_t slot =
      static_cast<std::size_t>(blk.block_idx().y) * blk.grid_dim().x + blk.block_idx().x;

  // ---- Phase 2 + 3 per column: block segmented scan, then commits --------
  for (index_t c = 0; c < cols; ++c) {
    // Gather column c's trailing partials out of the thread-contiguous tiles
    // into a dense lane array for the scan (the shuffle exchange on a GPU).
    for (unsigned t = 0; t < block_dim; ++t) {
      scan_vals[t] = tails[static_cast<std::size_t>(t) * cols + c];
    }
    std::copy(flags0.begin(), flags0.end(), flags.begin());
    detail::block_segmented_scan(scan_vals, flags, warp_carry, warp_flag);

    // The carry entering this block: contributions of all earlier blocks to
    // the segment open at block start. Fetched lazily (it blocks on the
    // predecessor) and consumed by exactly one closing write or re-published.
    float carry_in = 0.0f;
    bool carry_fetched = blk.block_idx().x == 0;  // block 0 starts the chain
    auto fetch_carry = [&]() -> float {
      if constexpr (kUseCarry) {
        if (!carry_fetched) {
          carry_in = chain->wait(slot - 1, c);
          carry_fetched = true;
        }
      }
      return carry_in;
    };

    if constexpr (kUseCarry) {
      // Publish the trailing open partial as early as possible (before the
      // commit loop): successors only stall on pure pass-through blocks.
      const detail::LaneState& last_st = states[last_active];
      if (last_st.tail_closes) {
        chain->publish(slot, c, 0.0f);  // successor starts a fresh segment
      } else if (flags[last_active] != 0) {
        chain->publish(slot, c, scan_vals[last_active]);
      } else {
        chain->publish(slot, c, scan_vals[last_active] + fetch_carry());
      }
    }

    for (unsigned t = 0; t < block_dim; ++t) {
      const detail::LaneState& st = states[t];
      if (!st.active) continue;
      value_t* out_base = out.data;

      // Head-partial commit: the segment closed by this thread's first head
      // started in an earlier one (row resolved in phase 1).
      if (st.has_head_partial) {
        float total = heads[static_cast<std::size_t>(t) * cols + c];
        bool in_block = false;
        if (t > 0) {
          total += scan_vals[t - 1];
          in_block = flags[t - 1] != 0;
        }
        value_t* addr =
            &out_base[static_cast<std::size_t>(st.head_row) * out.ld + col0 + c];
        if constexpr (kUseCarry) {
          if (!in_block) total += fetch_carry();
          *addr += total;  // the closing write owns the segment: no atomic
        } else {
          if (in_block) {
            *addr += total;
          } else {
            blk.atomic_add_global(addr, total);
          }
        }
      }

      // Trailing-run commit: lane t owns the write iff its run ends at its
      // partition boundary; without a carry chain the last active lane must
      // also flush its open partial (atomically).
      if constexpr (kUseCarry) {
        if (st.tail_closes) {
          float total = scan_vals[t];
          if (flags[t] == 0) total += fetch_carry();
          out_base[static_cast<std::size_t>(st.tail_row) * out.ld + col0 + c] += total;
        }
        // Open trailing runs were re-published to the successor above.
      } else {
        const bool run_ends_here = st.tail_closes || (t == last_active);
        if (run_ends_here) {
          value_t* addr =
              &out_base[static_cast<std::size_t>(st.tail_row) * out.ld + col0 + c];
          const bool contained = st.tail_closes && flags[t] != 0;
          if (contained) {
            *addr += scan_vals[t];
          } else {
            blk.atomic_add_global(addr, scan_vals[t]);
          }
        }
      }
    }
  }
}

/// Runtime dispatcher over the reduction strategy. `chain` is required for
/// (and only used by) kAdjacentSync; it must have grid.x * grid.y slots with
/// stride == column_tile.
template <class Expr>
void unified_block_program(sim::BlockCtx& blk, const FcooView& f, const OutView& out,
                           const UnifiedOptions& opt, const Expr& expr,
                           sim::CarryChain* chain = nullptr) {
  switch (opt.strategy) {
    case ReduceStrategy::kSegmentedScan:
      unified_block_program_impl<ReduceStrategy::kSegmentedScan>(blk, f, out, opt, expr);
      return;
    case ReduceStrategy::kAdjacentSync:
      unified_block_program_impl<ReduceStrategy::kAdjacentSync>(blk, f, out, opt, expr,
                                                                chain);
      return;
    case ReduceStrategy::kThreadAtomic:
      unified_block_program_impl<ReduceStrategy::kThreadAtomic>(blk, f, out, opt, expr);
      return;
    case ReduceStrategy::kAllAtomic:
      unified_block_program_impl<ReduceStrategy::kAllAtomic>(blk, f, out, opt, expr);
      return;
  }
  UST_ENSURES(false);
}

/// Shared-memory bytes the block program needs for a given configuration
/// (used to size LaunchConfig::shared_bytes).
std::size_t unified_shared_bytes(unsigned block_dim, unsigned column_tile);

}  // namespace ust::core
