#include "core/mode_plan.hpp"

namespace ust::core {

namespace {
ModePlan make_plan(TensorOp op, int order, int mode, bool mode_is_index) {
  UST_EXPECTS(order >= 2);
  UST_EXPECTS(mode >= 0 && mode < order);
  ModePlan plan;
  plan.op = op;
  plan.target_mode = mode;
  for (int m = 0; m < order; ++m) {
    const bool is_target = (m == mode);
    if (is_target == mode_is_index) {
      plan.index_modes.push_back(m);
    } else {
      plan.product_modes.push_back(m);
    }
  }
  return plan;
}
}  // namespace

ModePlan make_mode_plan_spttm(int order, int mode) {
  return make_plan(TensorOp::kSpTTM, order, mode, /*mode_is_index=*/false);
}

ModePlan make_mode_plan_spmttkrp(int order, int mode) {
  return make_plan(TensorOp::kSpMTTKRP, order, mode, /*mode_is_index=*/true);
}

ModePlan make_mode_plan_spttmc(int order, int mode) {
  return make_plan(TensorOp::kSpTTMc, order, mode, /*mode_is_index=*/true);
}

std::string ModePlan::describe() const {
  auto list = [](const std::vector<int>& v) {
    std::string s = "(";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i != 0) s += ",";
      s += std::to_string(v[i] + 1);  // 1-based, as the paper writes modes
    }
    return s + ")";
  };
  const char* name = op == TensorOp::kSpTTM      ? "SpTTM"
                     : op == TensorOp::kSpMTTKRP ? "SpMTTKRP"
                                                 : "SpTTMc";
  return std::string(name) + " on mode-" + std::to_string(target_mode + 1) +
         ": product" + list(product_modes) + " index" + list(index_modes);
}

}  // namespace ust::core
