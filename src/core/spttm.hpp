// Unified SpTTM: Y = X x_n U (sparse tensor times dense matrix on mode n),
// Equation (3) of the paper. The output is semi-sparse -- each surviving
// fiber along mode n is dense with length R -- and is returned in sCOO form.
// Runs the same unified block program as SpMTTKRP; only the product
// expression (a single factor-row gather) differs.
//
// Thin front-end over ust::engine::Engine (DESIGN.md §11): the engine fills
// the fiber-value matrix; this class assembles the sCOO output from the
// plan's host fiber coordinates.
#pragma once

#include <memory>
#include <span>

#include "core/unified_kernel.hpp"
#include "engine/engine.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"
#include "tensor/semisparse.hpp"

namespace ust::core {

class UnifiedSpttm {
 public:
  /// See UnifiedMttkrp for the `stream` / `cache` semantics: streaming keeps
  /// the tensor on the host and runs bounded-memory chunk plans; the engine's
  /// primary plan cache (or an explicit `cache`) reuses the device plan and
  /// the host fiber coordinates across constructions.
  UnifiedSpttm(engine::Engine& engine, const CooTensor& tensor, int mode,
               Partitioning part, const StreamingOptions& stream = {},
               pipeline::PlanCache* cache = nullptr);

  int mode() const noexcept { return plan_->mode; }
  const UnifiedPlan& plan() const { return plan_->unified_plan(); }
  bool streaming() const noexcept { return plan_->streaming(); }
  nnz_t num_output_fibers() const noexcept { return plan_->num_segments; }
  const std::shared_ptr<const engine::OpPlan>& op_plan() const noexcept { return plan_; }
  engine::Engine& engine() const noexcept { return *engine_; }

  /// Runs Y = X x_mode U. `u` must be dims[mode] x R; the result has one
  /// dense fiber of length R per distinct index-mode coordinate pair, in
  /// lexicographic order.
  SemiSparseTensor run(const DenseMatrix& u, const UnifiedOptions& opt = {}) const;

  /// Allocates the sCOO output (fiber coordinates filled, values zeroed) that
  /// a request() for this op writes into.
  SemiSparseTensor make_output(index_t r) const;

  /// Builds the engine request writing the fiber values of `out` (a
  /// make_output(u.cols()) result). `u` and `out` must outlive the job.
  engine::OpRequest request(const DenseMatrix& u, SemiSparseTensor& out,
                            const UnifiedOptions& opt = {}) const;

 private:
  engine::Engine* engine_;
  std::shared_ptr<const engine::OpPlan> plan_;
};

}  // namespace ust::core
