// Unified SpTTM: Y = X x_n U (sparse tensor times dense matrix on mode n),
// Equation (3) of the paper. The output is semi-sparse -- each surviving
// fiber along mode n is dense with length R -- and is returned in sCOO form.
// Runs the same unified block program as SpMTTKRP; only the product
// expression (a single factor-row gather) differs.
#pragma once

#include <memory>

#include "core/mode_plan.hpp"
#include "core/unified_plan.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"
#include "tensor/semisparse.hpp"

namespace ust::core {

class UnifiedSpttm {
 public:
  UnifiedSpttm(sim::Device& device, const CooTensor& tensor, int mode, Partitioning part);

  int mode() const noexcept { return mode_; }
  const UnifiedPlan& plan() const noexcept { return *plan_; }
  nnz_t num_output_fibers() const noexcept { return plan_->num_segments(); }

  /// Runs Y = X x_mode U. `u` must be dims[mode] x R; the result has one
  /// dense fiber of length R per distinct index-mode coordinate pair, in
  /// lexicographic order.
  SemiSparseTensor run(const DenseMatrix& u, const UnifiedOptions& opt = {}) const;

 private:
  int mode_;
  std::unique_ptr<UnifiedPlan> plan_;
  std::vector<std::vector<index_t>> fiber_coords_;  // host copy, per index mode
  mutable sim::DeviceBuffer<value_t> factor_buf_;
  mutable sim::DeviceBuffer<value_t> out_buf_;
};

/// One-shot convenience wrapper.
SemiSparseTensor spttm_unified(sim::Device& device, const CooTensor& tensor, int mode,
                               const DenseMatrix& u, Partitioning part,
                               const UnifiedOptions& opt = {});

}  // namespace ust::core
