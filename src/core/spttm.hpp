// Unified SpTTM: Y = X x_n U (sparse tensor times dense matrix on mode n),
// Equation (3) of the paper. The output is semi-sparse -- each surviving
// fiber along mode n is dense with length R -- and is returned in sCOO form.
// Runs the same unified block program as SpMTTKRP; only the product
// expression (a single factor-row gather) differs.
#pragma once

#include <memory>
#include <span>

#include "core/mode_plan.hpp"
#include "core/unified_plan.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"
#include "tensor/semisparse.hpp"

namespace ust::pipeline {
class PlanCache;
}

namespace ust::shard {
struct OpShardState;
}

namespace ust::core {

class UnifiedSpttm {
 public:
  /// See UnifiedMttkrp for the `stream` / `cache` semantics: streaming keeps
  /// the tensor on the host and runs bounded-memory chunk plans; a cache
  /// reuses the device plan (and the host fiber coordinates) across
  /// constructions with the same tensor/mode/partitioning.
  UnifiedSpttm(sim::Device& device, const CooTensor& tensor, int mode, Partitioning part,
               const StreamingOptions& stream = {}, pipeline::PlanCache* cache = nullptr);

  // Out-of-line because shard::OpShardState is only forward-declared here.
  ~UnifiedSpttm();
  UnifiedSpttm(UnifiedSpttm&&) noexcept;
  UnifiedSpttm& operator=(UnifiedSpttm&&) noexcept;

  int mode() const noexcept { return mode_; }
  const UnifiedPlan& plan() const {
    UST_EXPECTS(plan_ != nullptr);
    return *plan_;
  }
  bool streaming() const noexcept { return stream_.enabled; }
  nnz_t num_output_fibers() const noexcept { return num_fibers_; }

  /// Runs Y = X x_mode U. `u` must be dims[mode] x R; the result has one
  /// dense fiber of length R per distinct index-mode coordinate pair, in
  /// lexicographic order.
  SemiSparseTensor run(const DenseMatrix& u, const UnifiedOptions& opt = {}) const;

 private:
  shard::OpShardState& shard_state(unsigned num_devices) const;

  sim::Device* device_;
  int mode_;
  Partitioning part_;
  StreamingOptions stream_;
  // plan_ is null when streaming; when cached it aliases into (and co-owns)
  // the cache bundle, so it -- and the fiber_coords_ spans below that point
  // into the bundle -- stay valid past eviction.
  std::shared_ptr<const UnifiedPlan> plan_;
  std::unique_ptr<FcooTensor> fcoo_;  // host tensor, streaming only
  std::vector<index_t> dims_;
  std::vector<int> index_modes_;
  nnz_t num_fibers_ = 0;
  /// Per-index-mode fiber coordinates for sCOO output assembly; views into
  /// the cache bundle (plan path) or the host FcooTensor (streaming path),
  /// never a copy.
  std::vector<std::span<const index_t>> fiber_coords_;
  /// Ordinal seg_row (0, 1, 2, ...) backing the host view on the streaming
  /// path, where no UnifiedPlan exists to provide it (SpTTM's output rows
  /// are fiber ordinals, not index coordinates).
  std::vector<index_t> seg_ordinals_;
  mutable sim::DeviceBuffer<value_t> factor_buf_;
  mutable sim::DeviceBuffer<value_t> out_buf_;
  mutable std::unique_ptr<shard::OpShardState> shard_;
};

/// One-shot convenience wrapper.
SemiSparseTensor spttm_unified(sim::Device& device, const CooTensor& tensor, int mode,
                               const DenseMatrix& u, Partitioning part,
                               const UnifiedOptions& opt = {},
                               const StreamingOptions& stream = {});

}  // namespace ust::core
