// Tensor compression with Tucker/HOOI -- the extension the paper sketches
// ("a similar approach can be used to implement Tucker using unified").
//
// A smooth 3-D field sampled sparsely (think sensor readings over a spatial
// grid across time) compresses extremely well under a small Tucker core.
// This example builds such a field, runs HOOI on the unified SpTTMc kernel,
// and reports the compression ratio versus achieved fit for several core
// sizes.
//
// Run:  ./examples/tucker_compress [--dim 48] [--nnz 40000]
#include <cmath>
#include <cstdio>

#include "core/tucker.hpp"
#include "tensor/coo.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

using namespace ust;

namespace {

/// A fully sampled smooth trigonometric field: a sum of a few separable
/// low-frequency harmonics, so the multilinear rank is genuinely small.
/// (Every grid point is stored -- a sparsely sampled field would not be
/// low-rank, because the structural zeros at missing positions are part of
/// the tensor Tucker must fit.)
CooTensor make_field(index_t dim, double noise, Prng& rng) {
  CooTensor t({dim, dim, dim});
  t.reserve(static_cast<nnz_t>(dim) * dim * dim);
  std::vector<index_t> idx(3);
  auto wave = [&](double x, int harmonic) {
    return std::sin((harmonic + 1) * 3.14159265358979 * x) + 0.25 * harmonic;
  };
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = 0; j < dim; ++j) {
      for (index_t k = 0; k < dim; ++k) {
        const double x = static_cast<double>(i) / dim;
        const double y = static_cast<double>(j) / dim;
        const double z = static_cast<double>(k) / dim;
        double v = 0.0;
        for (int h = 0; h < 3; ++h) v += wave(x, h) * wave(y, (h + 1) % 3) * wave(z, h);
        v += noise * rng.next_gaussian();
        idx = {i, j, k};
        t.push_back(idx, static_cast<value_t>(v));
      }
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("tucker_compress", "Tucker/HOOI compression of a sampled smooth field");
  cli.option("dim", "40", "grid points per mode");
  cli.option("noise", "0.02", "measurement noise sigma");
  if (!cli.parse(argc, argv)) return 1;

  Prng rng(11);
  const auto dim = static_cast<index_t>(cli.get_int("dim"));
  const CooTensor field = make_field(dim, cli.get_double("noise"), rng);
  std::printf("field tensor: %s\n", field.describe().c_str());
  const double raw_bytes = static_cast<double>(field.storage_bytes());

  sim::Device device;
  engine::Engine engine(device);
  print_banner("Tucker compression sweep (HOOI on unified SpTTMc)");
  Table t({"core", "fit", "iters", "compressed KB", "raw KB", "ratio"});
  for (index_t r : {2u, 4u, 6u, 8u}) {
    core::TuckerOptions opt;
    opt.core_dims = {r, r, r};
    opt.max_iterations = 12;
    opt.part = Partitioning{.threadlen = 8, .block_size = 128};
    const core::TuckerResult res = core::tucker_hooi_unified(engine, field, opt);
    const double compressed_bytes =
        static_cast<double>(r) * r * r * sizeof(value_t) +
        3.0 * static_cast<double>(dim) * r * sizeof(value_t);
    t.add_row({std::to_string(r) + "^3", Table::num(res.fit, 4),
               std::to_string(res.iterations), Table::num(compressed_bytes / 1024.0, 1),
               Table::num(raw_bytes / 1024.0, 1),
               Table::num(raw_bytes / compressed_bytes, 1) + "x"});
  }
  t.print();
  std::printf(
      "a smooth field should reach fit > 0.9 with a tiny core -- orders of\n"
      "magnitude smaller than the raw sample list.\n");
  return 0;
}
