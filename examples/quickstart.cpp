// Quickstart: the 60-second tour of the UST public API.
//
//   1. build (or load) a sparse tensor in COO form,
//   2. inspect its F-COO encoding for an operation,
//   3. create an Engine (the execution context every op runs through) and
//      run unified SpTTM and SpMTTKRP (native backend by default;
//      --backend sim runs the GPU execution-model simulator),
//   4. submit a concurrent mixed-op burst to the engine,
//   5. factorise the tensor with CP-ALS.
//
// Run:  ./examples/quickstart [--tns file.tns] [--backend native|sim]
#include <cstdio>
#include <future>

#include "core/cp_als.hpp"
#include "core/mode_plan.hpp"
#include "core/spmttkrp.hpp"
#include "core/spttm.hpp"
#include "engine/engine.hpp"
#include "io/generate.hpp"
#include "io/tns.hpp"
#include "util/cli.hpp"

using namespace ust;

int main(int argc, char** argv) {
  Cli cli("quickstart", "UST quickstart tour");
  cli.option("tns", "", "optional FROSTT .tns file to load instead of a synthetic tensor");
  cli.option("backend", "native",
             "unified kernel execution backend: 'native' (thread-pool fast path) or "
             "'sim' (GPU execution-model simulator)");
  if (!cli.parse(argc, argv)) return 1;
  core::UnifiedOptions kernel_opt;
  if (const std::string b = cli.get("backend"); b == "sim") {
    kernel_opt.backend = core::ExecBackend::kSim;
  } else if (b != "native") {
    std::fprintf(stderr, "warning: unknown --backend '%s', using native\n", b.c_str());
  }

  // --- 1. A sparse tensor ---------------------------------------------------
  CooTensor x;
  if (const std::string path = cli.get("tns"); !path.empty()) {
    x = io::read_tns_file(path);
  } else {
    // 200 x 150 x 100 tensor, ~50k non-zeros with skewed index popularity.
    x = io::generate_zipf({200, 150, 100}, 50'000, {0.9, 0.9, 0.9}, /*seed=*/42);
  }
  std::printf("tensor: %s\n", x.describe().c_str());

  // --- 2. The F-COO encoding ------------------------------------------------
  // Mode classification follows the paper's Table I: for SpMTTKRP on mode-1,
  // modes 2 and 3 are product modes (indices stored) and mode 1 is the index
  // mode (compressed to one bit per non-zero).
  const core::ModePlan plan = core::make_mode_plan_spmttkrp(x.order(), 0);
  std::printf("mode plan: %s\n", plan.describe().c_str());
  const FcooTensor fcoo = FcooTensor::build(x, plan.index_modes, plan.product_modes);
  std::printf("F-COO: %llu segments, %.2f bytes/nnz vs COO's %.2f bytes/nnz\n",
              static_cast<unsigned long long>(fcoo.num_segments()),
              static_cast<double>(fcoo.paper_storage_bytes(8)) / static_cast<double>(fcoo.nnz()),
              static_cast<double>(x.storage_bytes()) / static_cast<double>(x.nnz()));

  // --- 3. An engine and the unified kernels ---------------------------------
  // The Engine owns the execution resources: the simulated device group (here
  // 2 devices, each a 12 GB Titan-X-like simulator on the CPU), one plan
  // cache per device, and the job-submission machinery. Every op front-end
  // built on it shares those resources.
  engine::Engine eng(engine::EngineOptions{.num_devices = 2});
  const index_t rank = 16;
  Prng rng(7);
  DenseMatrix u(x.dim(2), rank);
  u.fill_random(rng);

  core::UnifiedSpttm spttm(eng, x, /*mode=*/2, Partitioning{});
  const SemiSparseTensor y = spttm.run(u, kernel_opt);
  std::printf("SpTTM mode-3: %llu dense fibers of length %u\n",
              static_cast<unsigned long long>(y.num_fibers()), y.dense_length());

  std::vector<DenseMatrix> factors;
  for (int m = 0; m < x.order(); ++m) {
    DenseMatrix f(x.dim(m), rank);
    f.fill_random(rng);
    factors.push_back(std::move(f));
  }
  core::UnifiedMttkrp mttkrp(eng, x, /*mode=*/0, Partitioning{});
  const DenseMatrix m1 = mttkrp.run(factors, kernel_opt);
  std::printf("SpMTTKRP mode-1: %u x %u output, device peak %.1f MB, %llu atomic ops\n",
              m1.rows(), m1.cols(),
              static_cast<double>(eng.device(0).peak_bytes()) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(eng.device(0).counters().atomic_ops));

  // --- 4. Concurrent submission ---------------------------------------------
  // submit() admits jobs round-robin to the device group and returns futures;
  // results are bitwise identical to the sequential runs above (native
  // backend). This is the serving path: N clients, one engine.
  if (kernel_opt.backend == core::ExecBackend::kNative) {
    eng.prewarm(*mttkrp.op_plan());
    std::vector<DenseMatrix> outs(4, DenseMatrix(x.dim(0), rank));
    std::vector<std::future<void>> futures;
    for (auto& out : outs) futures.push_back(eng.submit(mttkrp.request(factors, out)));
    for (auto& f : futures) f.get();
    const engine::EngineStats stats = eng.stats();
    std::printf("submitted %llu jobs across %zu devices (%llu plan-cache hits)\n",
                static_cast<unsigned long long>(stats.jobs_completed),
                stats.devices.size(),
                static_cast<unsigned long long>(stats.cache_total.hits));
  }

  // --- 5. CP decomposition --------------------------------------------------
  core::CpOptions opt;
  opt.rank = 8;
  opt.max_iterations = 10;
  opt.kernel = kernel_opt;
  const core::CpResult cp = core::cp_als_unified(eng, x, opt);
  std::printf("CP-ALS: fit %.4f after %d iterations (%s); lambda[0] = %.3f\n", cp.fit,
              cp.iterations, cp.converged ? "converged" : "iteration cap", cp.lambda[0]);
  std::printf("per-mode MTTKRP seconds:");
  for (double s : cp.timings.mttkrp_seconds) std::printf(" %.4f", s);
  std::printf("  (balanced across modes -- the unified property)\n");
  return 0;
}
