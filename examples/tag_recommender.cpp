// Context-aware tag recommendation -- the paper's "delicious" scenario.
//
// delicious is a (user x item x tag) tensor from a social bookmarking
// system: entry (u, i, t) = 1 when user u labelled item i with tag t. A CP
// decomposition gives low-rank profiles for users, items and tags; the
// reconstructed score lambda . (A(u,:) * B(i,:) * C(t,:)) ranks candidate
// tags for a (user, item) pair -- top-N context-aware recommendation (the
// TFMAP use case cited in the paper's introduction).
//
// This example plants community structure (groups of users who tag related
// items with related tags), hides a fraction of the observations, trains CP
// on the rest with unified kernels, and reports hit-rate@N on the held-out
// assignments against a popularity baseline.
//
// Run:  ./examples/tag_recommender [--users 300] [--items 400] [--tags 200]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cp_als.hpp"
#include "tensor/coo.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

using namespace ust;

namespace {

struct Interaction {
  index_t user;
  index_t item;
  index_t tag;
};

struct Split {
  CooTensor train;
  std::vector<Interaction> test;
};

/// Generates community-structured (user,item,tag) triples: each community
/// owns item and tag ranges; users tag mostly inside their community.
Split make_delicious_like(index_t users, index_t items, index_t tags, int communities,
                          nnz_t interactions, double holdout, Prng& rng) {
  std::vector<Interaction> all;
  all.reserve(interactions);
  const auto c_users = users / static_cast<index_t>(communities);
  const auto c_items = items / static_cast<index_t>(communities);
  const auto c_tags = tags / static_cast<index_t>(communities);
  for (nnz_t n = 0; n < interactions; ++n) {
    const auto c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(communities)));
    const bool in_community = rng.next_double() < 0.85;
    Interaction it;
    it.user = c * c_users + rng.next_index(c_users);
    if (in_community) {
      it.item = c * c_items + rng.next_index(c_items);
      it.tag = c * c_tags + rng.next_index(c_tags);
    } else {
      it.item = rng.next_index(items);
      it.tag = rng.next_index(tags);
    }
    all.push_back(it);
  }

  Split split;
  split.train = CooTensor({users, items, tags});
  std::vector<index_t> idx(3);
  for (const auto& it : all) {
    if (rng.next_double() < holdout) {
      split.test.push_back(it);
    } else {
      idx = {it.user, it.item, it.tag};
      split.train.push_back(idx, 1.0f);
    }
  }
  // Sum duplicate (u,i,t) observations.
  const std::vector<int> order{0, 1, 2};
  split.train.sort_by_modes(order);
  split.train.coalesce();
  return split;
}

/// Scores tag t for (user, item) under the CP model.
double score(const core::CpResult& cp, index_t u, index_t i, index_t t) {
  double s = 0.0;
  for (index_t r = 0; r < cp.factors[0].cols(); ++r) {
    s += cp.lambda[r] * cp.factors[0](u, r) * cp.factors[1](i, r) * cp.factors[2](t, r);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("tag_recommender", "delicious-style context-aware top-N tag recommendation");
  cli.option("users", "300", "number of users");
  cli.option("items", "400", "number of items");
  cli.option("tags", "200", "number of tags");
  cli.option("communities", "6", "planted communities");
  cli.option("interactions", "60000", "tagging events to generate");
  cli.option("rank", "12", "CP rank");
  cli.option("topn", "10", "recommendation list length");
  if (!cli.parse(argc, argv)) return 1;

  Prng rng(77);
  const auto tags = static_cast<index_t>(cli.get_int("tags"));
  std::printf("building delicious-like (user,item,tag) data...\n");
  Split split = make_delicious_like(
      static_cast<index_t>(cli.get_int("users")), static_cast<index_t>(cli.get_int("items")),
      tags, static_cast<int>(cli.get_int("communities")),
      static_cast<nnz_t>(cli.get_int("interactions")), 0.1, rng);
  std::printf("train tensor: %s; held-out events: %zu\n", split.train.describe().c_str(),
              split.test.size());

  sim::Device device;
  engine::Engine engine(device);
  core::CpOptions opt;
  opt.rank = static_cast<index_t>(cli.get_int("rank"));
  opt.max_iterations = 25;
  opt.part = Partitioning{.threadlen = 8, .block_size = 32};  // delicious's Table V config
  const core::CpResult cp = core::cp_als_unified(engine, split.train, opt);
  std::printf("CP-ALS: fit %.4f in %d iterations\n", cp.fit, cp.iterations);

  // Popularity baseline: global tag counts.
  std::vector<nnz_t> tag_count(tags, 0);
  for (nnz_t x = 0; x < split.train.nnz(); ++x) ++tag_count[split.train.index(x, 2)];
  std::vector<index_t> popular(tags);
  for (index_t t = 0; t < tags; ++t) popular[t] = t;
  std::sort(popular.begin(), popular.end(),
            [&](index_t a, index_t b) { return tag_count[a] > tag_count[b]; });

  const auto top_n = static_cast<std::size_t>(cli.get_int("topn"));
  std::size_t cp_hits = 0;
  std::size_t pop_hits = 0;
  std::vector<index_t> candidates(tags);
  const std::size_t eval = std::min<std::size_t>(split.test.size(), 2000);
  for (std::size_t e = 0; e < eval; ++e) {
    const auto& it = split.test[e];
    for (index_t t = 0; t < tags; ++t) candidates[t] = t;
    std::partial_sort(candidates.begin(), candidates.begin() + static_cast<long>(top_n),
                      candidates.end(), [&](index_t a, index_t b) {
                        return score(cp, it.user, it.item, a) > score(cp, it.user, it.item, b);
                      });
    if (std::find(candidates.begin(), candidates.begin() + static_cast<long>(top_n), it.tag) !=
        candidates.begin() + static_cast<long>(top_n)) {
      ++cp_hits;
    }
    if (std::find(popular.begin(), popular.begin() + static_cast<long>(top_n), it.tag) !=
        popular.begin() + static_cast<long>(top_n)) {
      ++pop_hits;
    }
  }

  print_banner("Held-out hit rate @" + std::to_string(top_n));
  Table t({"method", "hit rate"});
  const double cp_rate = static_cast<double>(cp_hits) / static_cast<double>(eval);
  const double pop_rate = static_cast<double>(pop_hits) / static_cast<double>(eval);
  t.add_row({"CP (unified kernels)", Table::num(cp_rate, 3)});
  t.add_row({"global popularity", Table::num(pop_rate, 3)});
  t.print();
  std::printf("CP should beat popularity by exploiting (user,item) context.\n");
  return cp_rate > pop_rate ? 0 : 1;
}
