// fMRI activity analysis -- the paper's "brainq" scenario.
//
// brainq is a (noun x voxel x human-subject) tensor of fMRI measurements
// (Mitchell et al., Science 2008): entry (n, v, s) is the activity of brain
// voxel v while subject s reads noun n. CP decomposition factorises this
// into rank-R components; each component couples a set of nouns with a
// spatial activation pattern shared across subjects.
//
// This example builds a synthetic brainq-like tensor with planted semantic
// clusters (groups of nouns that activate the same voxel pattern), runs
// CP-ALS with unified SpMTTKRP kernels, and verifies that the recovered
// components separate the planted clusters.
//
// Run:  ./examples/fmri_analysis [--nouns 60] [--voxels 2000] [--subjects 9]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cp_als.hpp"
#include "io/generate.hpp"
#include "tensor/coo.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

using namespace ust;

namespace {

struct PlantedData {
  CooTensor tensor;
  std::vector<int> noun_cluster;  // ground-truth cluster of each noun
};

/// Builds a dense (noun x voxel x subject) tensor from `k` planted clusters:
/// nouns in cluster c activate a cluster-specific random voxel pattern,
/// modulated per subject, plus measurement noise.
PlantedData make_brainq_like(index_t nouns, index_t voxels, index_t subjects, int k,
                             double noise, Prng& rng) {
  std::vector<std::vector<float>> pattern(static_cast<std::size_t>(k),
                                          std::vector<float>(voxels));
  for (auto& p : pattern) {
    for (auto& v : p) v = rng.next_float(0.0f, 1.0f);
  }
  std::vector<std::vector<float>> gain(static_cast<std::size_t>(k),
                                       std::vector<float>(subjects));
  for (auto& g : gain) {
    for (auto& v : g) v = rng.next_float(0.5f, 1.5f);
  }

  PlantedData out;
  out.tensor = CooTensor({nouns, voxels, subjects});
  out.tensor.reserve(static_cast<nnz_t>(nouns) * voxels * subjects);
  out.noun_cluster.resize(nouns);
  std::vector<index_t> idx(3);
  for (index_t n = 0; n < nouns; ++n) {
    const int c = static_cast<int>(n % static_cast<index_t>(k));
    out.noun_cluster[n] = c;
    const float strength = rng.next_float(0.8f, 1.2f);
    for (index_t v = 0; v < voxels; ++v) {
      for (index_t s = 0; s < subjects; ++s) {
        const double val = strength * pattern[static_cast<std::size_t>(c)][v] *
                               gain[static_cast<std::size_t>(c)][s] +
                           noise * rng.next_gaussian();
        idx = {n, v, s};
        out.tensor.push_back(idx, static_cast<value_t>(val));
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("fmri_analysis", "brainq-style CP analysis of fMRI measurements");
  cli.option("nouns", "60", "number of noun stimuli (brainq: 60)");
  cli.option("voxels", "1200", "number of voxels (brainq: 70K; scaled down)");
  cli.option("subjects", "9", "number of human subjects (brainq: 9)");
  cli.option("clusters", "4", "planted semantic clusters");
  cli.option("noise", "0.05", "measurement noise sigma");
  if (!cli.parse(argc, argv)) return 1;

  Prng rng(2026);
  const int k = static_cast<int>(cli.get_int("clusters"));
  std::printf("building brainq-like tensor with %d planted noun clusters...\n", k);
  const PlantedData data = make_brainq_like(
      static_cast<index_t>(cli.get_int("nouns")), static_cast<index_t>(cli.get_int("voxels")),
      static_cast<index_t>(cli.get_int("subjects")), k, cli.get_double("noise"), rng);
  std::printf("tensor: %s\n", data.tensor.describe().c_str());

  // Rank = number of planted clusters; like the paper, keep rank below the
  // smallest mode size (subjects = 9) to avoid a deficient system.
  sim::Device device;
  engine::Engine engine(device);
  core::CpOptions opt;
  opt.rank = static_cast<index_t>(k);
  opt.max_iterations = 30;
  opt.fit_tolerance = 1e-5;
  opt.part = Partitioning{.threadlen = 64, .block_size = 128};  // brainq's Table V config
  const core::CpResult cp = core::cp_als_unified(engine, data.tensor, opt);
  std::printf("CP-ALS: fit %.4f in %d iterations; per-mode MTTKRP s:", cp.fit, cp.iterations);
  for (double s : cp.timings.mttkrp_seconds) std::printf(" %.3f", s);
  std::printf("\n");

  // Assign each noun to its dominant component and measure cluster purity.
  const DenseMatrix& noun_factor = cp.factors[0];
  std::vector<std::vector<int>> assignment(static_cast<std::size_t>(k));
  for (index_t n = 0; n < noun_factor.rows(); ++n) {
    index_t best = 0;
    for (index_t c = 1; c < noun_factor.cols(); ++c) {
      if (noun_factor(n, c) > noun_factor(n, best)) best = c;
    }
    assignment[best].push_back(data.noun_cluster[n]);
  }
  print_banner("Recovered components vs planted clusters");
  Table t({"component", "lambda", "#nouns", "dominant planted cluster", "purity"});
  double weighted_purity = 0.0;
  for (int c = 0; c < k; ++c) {
    const auto& members = assignment[static_cast<std::size_t>(c)];
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (int g : members) ++counts[static_cast<std::size_t>(g)];
    const auto dominant = std::max_element(counts.begin(), counts.end()) - counts.begin();
    const double purity =
        members.empty() ? 0.0
                        : static_cast<double>(counts[static_cast<std::size_t>(dominant)]) /
                              static_cast<double>(members.size());
    weighted_purity += purity * static_cast<double>(members.size());
    t.add_row({std::to_string(c), Table::num(cp.lambda[static_cast<std::size_t>(c)], 2),
               std::to_string(members.size()), std::to_string(dominant),
               Table::num(purity, 2)});
  }
  t.print();
  weighted_purity /= static_cast<double>(noun_factor.rows());
  std::printf("overall purity: %.2f (1.00 = perfect cluster recovery)\n", weighted_purity);
  return weighted_purity > 0.8 ? 0 : 1;
}
